package snap

import (
	"fmt"
	"os"
	"sync"
	"unsafe"

	"tmcheck/internal/pack"
)

// Spill hands out mmap-backed growable word arenas for the visited
// set's flat key storage (the dominant memory of a packed build), so
// state spaces larger than RAM stay checkable: the kernel pages cold
// key regions out to the backing files instead of the heap holding
// every key resident. Each Grow() call returns an independent
// pack.GrowFunc (one per intern table or flat key slice); regions are
// backed by temp files under dir, grown by remap-after-truncate, and
// removed on Close.
//
// A grow failure (mmap unsupported, disk full) panics with a plain
// error; the scans run under guard.Capture, which isolates it into a
// LimitError instead of crashing the process.
type Spill struct {
	dir     string
	mu      sync.Mutex
	regions []*spillRegion
}

// NewSpill returns a spill arena allocating under dir ("" means the
// system temp directory).
func NewSpill(dir string) *Spill {
	if dir == "" {
		dir = os.TempDir()
	}
	return &Spill{dir: dir}
}

// minSpillBytes is the initial region size (1 MiB): small enough that
// tiny builds waste little, large enough to amortize remaps.
const minSpillBytes = 1 << 20

// Grow returns a fresh spill-backed allocator. The returned function
// follows the pack.GrowFunc contract: it reallocates to capacity ≥
// need words preserving contents and length. Safe to call Grow
// concurrently; each returned func is single-goroutine like the table
// it backs.
func (s *Spill) Grow() pack.GrowFunc {
	r := &spillRegion{}
	s.mu.Lock()
	s.regions = append(s.regions, r)
	s.mu.Unlock()
	return func(need int, cur []uint64) []uint64 {
		w, err := r.grow(s.dir, need, cur)
		if err != nil {
			panic(fmt.Errorf("snap: spill: %w", err))
		}
		return w
	}
}

// Close unmaps every region and removes the backing files.
func (s *Spill) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, r := range s.regions {
		if err := r.close(); err != nil && first == nil {
			first = err
		}
	}
	s.regions = nil
	return first
}

// spillRegion is one growable file-backed mapping.
type spillRegion struct {
	f    *os.File
	data []byte
}

// grow (re)maps the region to at least need words. Growth remaps after
// extending the file — the data already written persists through the
// file, so only the first migration (heap → region) copies.
func (r *spillRegion) grow(dir string, need int, cur []uint64) ([]uint64, error) {
	size := len(r.data)
	if size == 0 {
		size = minSpillBytes
	}
	for size < need*8 {
		size *= 2
	}
	if r.f == nil {
		f, err := os.CreateTemp(dir, "tmspill-*.keys")
		if err != nil {
			return nil, err
		}
		r.f = f
	}
	fromHeap := r.data == nil
	if r.data != nil {
		if err := munmapBytes(r.data); err != nil {
			return nil, err
		}
		r.data = nil
	}
	if err := r.f.Truncate(int64(size)); err != nil {
		return nil, err
	}
	data, err := mmapFile(r.f, size)
	if err != nil {
		return nil, err
	}
	r.data = data
	words := unsafe.Slice((*uint64)(unsafe.Pointer(&data[0])), size/8)
	if fromHeap {
		copy(words, cur)
	}
	return words[:len(cur)], nil
}

func (r *spillRegion) close() error {
	var first error
	if r.data != nil {
		if err := munmapBytes(r.data); err != nil {
			first = err
		}
		r.data = nil
	}
	if r.f != nil {
		name := r.f.Name()
		if err := r.f.Close(); err != nil && first == nil {
			first = err
		}
		if err := os.Remove(name); err != nil && first == nil {
			first = err
		}
		r.f = nil
	}
	return first
}
