package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"

	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/tm"
)

// The snapshot file format, modeled on append-only-log persistence
// (gridhouse's AOF): a magic string, then a sequence of CRC-framed
// records, each fsynced as a unit, so a snapshot killed mid-write
// (SIGKILL, power loss) is a valid snapshot with a torn tail that Load
// truncates away.
//
//	file   := magic record*
//	magic  := "tmsnap01" (8 bytes)
//	record := len:u32le crc:u32le payload   (crc = IEEE CRC-32 of payload)
//
// The payload's first byte is the record type:
//
//	header  (1) := version:u32 fingerprint:u64 threads:u32 vars:u32
//	section (2) := id:u32 tm:str cm:str kw:u32 keyBits:u32
//	level   (3) := id:u32 prevInterned:u64 interned:u64
//	               prevExpanded:u64 expanded:u64
//	               key words ((interned-prevInterned)·kw × u64)
//	               per state in [prevExpanded, expanded):
//	                 nedges:u32 then nedges × 12-byte edges
//	edge        := to:u32 emit:u16 op:u8 v:u8 t:u8 xkind:u8 xv:u8 r:u8
//	str         := len:u16 bytes
//
// All integers are little-endian and fixed-width. The header is always
// the first record; its fingerprint hashes the TM/CM registry so a
// snapshot resumed under a binary with a different algorithm set fails
// loudly, and threads/vars pin the instance parameters. Level records
// carry their previous barrier coordinates, so replaying a file is
// idempotent: a record whose prev coordinates do not extend the
// section's current state is either a stale duplicate (skipped) or
// corruption (refused).

const magic = "tmsnap01"

// FormatVersion is the snapshot format version written into (and
// required of) the header record.
const FormatVersion = 1

const (
	recHeader  = 1
	recSection = 2
	recLevel   = 3
)

// edgeBytes is the fixed on-disk size of one explore.Edge.
const edgeBytes = 12

// Fingerprint hashes the snapshot format version and the registered
// TM-algorithm and contention-manager names. Two binaries with the
// same fingerprint assign the same meaning to a section's (tm, cm)
// names, so resuming across them is exact; a mismatch is refused.
func Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "tmsnap/%d", FormatVersion)
	for _, n := range tm.AlgorithmNames() {
		io.WriteString(h, "\x00"+n)
	}
	io.WriteString(h, "\x01")
	for _, n := range tm.ManagerNames() {
		io.WriteString(h, "\x00"+n)
	}
	return h.Sum64()
}

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// frame wraps a payload into a length+CRC framed record.
func frame(payload []byte) []byte {
	rec := make([]byte, 0, 8+len(payload))
	rec = appendU32(rec, uint32(len(payload)))
	rec = appendU32(rec, crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

func encodeHeader(threads, vars int) []byte {
	b := []byte{recHeader}
	b = appendU32(b, FormatVersion)
	b = appendU64(b, Fingerprint())
	b = appendU32(b, uint32(threads))
	return appendU32(b, uint32(vars))
}

func encodeSection(sec *section) []byte {
	b := []byte{recSection}
	b = appendU32(b, sec.id)
	b = appendStr(b, sec.tmName)
	b = appendStr(b, sec.cmName)
	b = appendU32(b, uint32(sec.kw))
	return appendU32(b, uint32(sec.keyBits))
}

func encodeLevel(id uint32, prevI, interned, prevE, expanded int, newKeys []uint64, newOut [][]explore.Edge) []byte {
	size := 1 + 4 + 4*8 + 8*len(newKeys)
	for _, es := range newOut {
		size += 4 + edgeBytes*len(es)
	}
	b := make([]byte, 0, size)
	b = append(b, recLevel)
	b = appendU32(b, id)
	b = appendU64(b, uint64(prevI))
	b = appendU64(b, uint64(interned))
	b = appendU64(b, uint64(prevE))
	b = appendU64(b, uint64(expanded))
	for _, w := range newKeys {
		b = appendU64(b, w)
	}
	for _, es := range newOut {
		b = appendU32(b, uint32(len(es)))
		for _, e := range es {
			b = appendU32(b, uint32(e.To))
			b = binary.LittleEndian.AppendUint16(b, uint16(e.Emit))
			b = append(b, byte(e.Cmd.Op), byte(e.Cmd.V), byte(e.T), byte(e.X.Kind), byte(e.X.V), byte(e.R))
		}
	}
	return b
}

// decoder is a bounds-checked cursor over one record payload; any
// overrun poisons it and the caller reports the record corrupt.
type decoder struct {
	b   []byte
	off int
	bad bool
}

func (d *decoder) take(n int) []byte {
	if d.bad || d.off+n > len(d.b) {
		d.bad = true
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *decoder) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *decoder) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *decoder) u16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (d *decoder) str() string {
	n := int(d.u16())
	s := d.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

// levelRecord is one decoded level delta. The section id has already
// been consumed by the caller — the section's key width is needed to
// decode the key block.
type levelRecord struct {
	prevI, interned int
	prevE, expanded int
	keys            []uint64
	out             [][]explore.Edge
}

func decodeLevel(d *decoder, kw int) (levelRecord, error) {
	var lr levelRecord
	lr.prevI = int(d.u64())
	lr.interned = int(d.u64())
	lr.prevE = int(d.u64())
	lr.expanded = int(d.u64())
	if d.bad || lr.interned < lr.prevI || lr.expanded < lr.prevE || lr.expanded > lr.interned {
		return lr, fmt.Errorf("snap: malformed level record bounds")
	}
	nk := (lr.interned - lr.prevI) * kw
	raw := d.take(8 * nk)
	if raw == nil {
		return lr, fmt.Errorf("snap: truncated level record keys")
	}
	lr.keys = make([]uint64, nk)
	for i := range lr.keys {
		lr.keys[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	lr.out = make([][]explore.Edge, 0, lr.expanded-lr.prevE)
	for s := lr.prevE; s < lr.expanded; s++ {
		ne := int(d.u32())
		raw := d.take(edgeBytes * ne)
		if raw == nil {
			return lr, fmt.Errorf("snap: truncated level record edges")
		}
		var es []explore.Edge
		if ne > 0 {
			es = make([]explore.Edge, ne)
			for j := range es {
				p := raw[edgeBytes*j:]
				es[j] = explore.Edge{
					To:   int32(binary.LittleEndian.Uint32(p)),
					Emit: int16(binary.LittleEndian.Uint16(p[4:])),
					Cmd:  core.Command{Op: core.Op(p[6]), V: core.Var(p[7])},
					T:    core.Thread(p[8]),
					X:    tm.XCmd{Kind: tm.XKind(p[9]), V: core.Var(p[10])},
					R:    tm.Resp(p[11]),
				}
			}
		}
		lr.out = append(lr.out, es)
	}
	if d.bad || d.off != len(d.b) {
		return lr, fmt.Errorf("snap: malformed level record")
	}
	return lr, nil
}
