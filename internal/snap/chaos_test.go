// Chaos-driven torn-tail property test: a short write injected at
// EVERY byte offset of one level record — every state a mid-record
// crash can leave the file in — must (a) degrade the running check
// without changing its verdict, (b) leave exactly the valid prefix
// plus the torn bytes on disk, and (c) reopen-truncate and resume to
// the baseline verdict. External test package like resume_test: it
// drives the full job layer, which sits above snap.
package snap_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tmcheck/internal/chaos"
	"tmcheck/internal/job"
	"tmcheck/internal/snap"
)

// tinySpec is the smallest checkpointable job: the seq TM at (2,1)
// writes a ~400-byte snapshot, so sweeping every byte of a record
// stays cheap.
func tinySpec() job.Spec {
	return job.Spec{
		Kind: job.KindSafety, TM: "seq", Prop: "op",
		Threads: 2, Vars: 1, Engine: "materialized", Workers: 1,
	}
}

func TestChaosTornTailEveryByteOffset(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	want := stripVolatile(mustRun(t, tinySpec()).Checks)

	// Fault-free checkpointed run: learn the record layout.
	pristine := filepath.Join(dir, "pristine.snap")
	sp := tinySpec()
	sp.Checkpoint = pristine
	mustRun(t, sp)
	bounds := recordBoundaries(t, pristine)
	if len(bounds) < 3 {
		t.Fatalf("snapshot has too few records to tear: boundaries %v", bounds)
	}

	// Calibrate which record the first chaos-visible write appends (the
	// header record is written during open, before the wrapper goes
	// in): arm write #1 with keep 0 and see where the file stops.
	cal := filepath.Join(dir, "cal.snap")
	pl := chaos.Manual()
	pl.Arm(chaos.SiteSnapWrite, 1)
	pl.SetShortWrite(0)
	chaos.Install(pl)
	spCal := tinySpec()
	spCal.Checkpoint = cal
	_, err := job.Run(ctx, spCal)
	chaos.Uninstall()
	if err != nil {
		t.Fatalf("calibration run: %v", err)
	}
	fi, err := os.Stat(cal)
	if err != nil {
		t.Fatal(err)
	}
	first := -1
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == fi.Size() {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatalf("calibration stopped at %d, not a record boundary of %v", fi.Size(), bounds)
	}

	// Target the largest chaos-reachable record — a level record with a
	// real payload — and sweep a short write across every byte of it.
	target, targetLen := -1, int64(0)
	for i := first; i+1 < len(bounds); i++ {
		if l := bounds[i+1] - bounds[i]; l > targetLen {
			target, targetLen = i, l
		}
	}
	nth := target - first + 1
	t.Logf("target record: bytes [%d,%d) of %d (%d offsets), chaos write #%d",
		bounds[target], bounds[target+1], bounds[len(bounds)-1], targetLen, nth)

	for keep := int64(0); keep < targetLen; keep++ {
		path := filepath.Join(dir, "torn.snap")
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
		p := chaos.Manual()
		p.Arm(chaos.SiteSnapWrite, nth)
		p.SetShortWrite(int(keep))
		chaos.Install(p)
		sp := tinySpec()
		sp.Checkpoint = path
		res, err := job.Run(ctx, sp)
		chaos.Uninstall()
		if err != nil {
			t.Fatalf("keep %d: degraded run failed: %v", keep, err)
		}
		if got := stripVolatile(res.Checks); !reflect.DeepEqual(got, want) {
			t.Fatalf("keep %d: degraded run's verdict differs from baseline", keep)
		}
		if fi, err := os.Stat(path); err != nil {
			t.Fatalf("keep %d: %v", keep, err)
		} else if fi.Size() != bounds[target]+keep {
			t.Fatalf("keep %d: torn file is %d bytes, want %d (valid prefix + torn bytes)",
				keep, fi.Size(), bounds[target]+keep)
		}
		// Reopen writable and resume: the torn tail is truncated back to
		// the last intact record and the run completes to the baseline.
		sp.Resume = path
		res, err = job.Run(ctx, sp)
		if err != nil {
			t.Fatalf("keep %d: resume after tear: %v", keep, err)
		}
		if got := stripVolatile(res.Checks); !reflect.DeepEqual(got, want) {
			t.Fatalf("keep %d: resumed verdict differs from baseline", keep)
		}
		// The healed file must again parse as whole records.
		recordBoundaries(t, path)
	}
}

// TestChaosStrictPersistFailsFast pins -strict-persist: the same
// injected write error that degrades a default run fails a strict one,
// and the error names the injected fault.
func TestChaosStrictPersistFailsFast(t *testing.T) {
	dir := t.TempDir()
	p := chaos.Manual()
	p.Arm(chaos.SiteSnapWrite, 1)
	chaos.Install(p)
	defer chaos.Uninstall()
	sp := tinySpec()
	sp.Checkpoint = filepath.Join(dir, "strict.snap")
	_, err := job.RunConfig(context.Background(), sp, job.Config{StrictPersist: true})
	if err == nil {
		t.Fatal("strict run with injected write fault succeeded, want failure")
	}
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("strict failure does not unwrap to the injected fault: %v", err)
	}
}

// TestSyncModesResumeEquivalence runs a checkpointed job under every
// -snap-sync mode and asserts the snapshot still resumes to the
// baseline verdict — the fsync policy moves the crash window, never
// the bytes' meaning.
func TestSyncModesResumeEquivalence(t *testing.T) {
	want := stripVolatile(mustRun(t, tinySpec()).Checks)
	for _, mode := range []string{"always", "batch", "batch:2", "none"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			sync, batch, err := snap.ParseSyncMode(mode)
			if err != nil {
				t.Fatal(err)
			}
			sp := tinySpec()
			sp.Checkpoint = filepath.Join(dir, "ck.snap")
			res, err := job.RunConfig(context.Background(), sp, job.Config{SnapSync: sync, SnapBatch: batch})
			if err != nil {
				t.Fatal(err)
			}
			if got := stripVolatile(res.Checks); !reflect.DeepEqual(got, want) {
				t.Fatal("checkpointed verdict differs from baseline")
			}
			resumed := tinySpec()
			resumed.Resume = sp.Checkpoint
			res, err = job.Run(context.Background(), resumed)
			if err != nil {
				t.Fatal(err)
			}
			if got := stripVolatile(res.Checks); !reflect.DeepEqual(got, want) {
				t.Fatal("resumed verdict differs from baseline")
			}
		})
	}
}

// TestParseSyncMode pins the flag grammar.
func TestParseSyncMode(t *testing.T) {
	cases := []struct {
		in    string
		mode  snap.SyncMode
		batch int
		ok    bool
	}{
		{"", snap.SyncAlways, 0, true},
		{"always", snap.SyncAlways, 0, true},
		{"none", snap.SyncNone, 0, true},
		{"batch", snap.SyncBatch, 8, true},
		{"batch:4", snap.SyncBatch, 4, true},
		{"batch:0", 0, 0, false},
		{"batch:x", 0, 0, false},
		{"sometimes", 0, 0, false},
	}
	for _, c := range cases {
		mode, batch, err := snap.ParseSyncMode(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseSyncMode(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (mode != c.mode || batch != c.batch) {
			t.Errorf("ParseSyncMode(%q) = (%v, %d), want (%v, %d)", c.in, mode, batch, c.mode, c.batch)
		}
	}
}
