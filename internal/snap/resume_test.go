// Resume-equivalence property tests: a checkpointed run interrupted at
// ANY record boundary of its snapshot — every state a crash, SIGKILL
// or tripped limit can leave the file in, after torn-tail truncation —
// resumes to verdicts bit-identical to an uninterrupted run, at any
// worker count. External test package: it drives the full job layer,
// which sits above snap.
package snap_test

import (
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tmcheck/internal/guard"
	"tmcheck/internal/job"
)

// recordBoundaries returns every prefix length at which the snapshot
// file consists of the magic plus whole records — offset 8 (magic
// only) first, the full file size last.
func recordBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(8) // the "tmsnap01" magic
	bounds := []int64{off}
	for off < int64(len(data)) {
		if off+8 > int64(len(data)) {
			t.Fatalf("trailing garbage at offset %d", off)
		}
		plen := binary.LittleEndian.Uint32(data[off:])
		off += 8 + int64(plen)
		bounds = append(bounds, off)
	}
	if off != int64(len(data)) {
		t.Fatalf("final record overruns the file: offset %d, size %d", off, len(data))
	}
	return bounds
}

// prefixFile copies the first n bytes of path into dir and returns the
// copy's path.
func prefixFile(t *testing.T, path string, n int64, dir string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "prefix.snap")
	if err := os.WriteFile(out, data[:n], 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

// stripVolatile zeroes the fields that legitimately differ between an
// uninterrupted and a resumed run — wall-clocks, build vitals and the
// resume seed itself. Everything left must be bit-identical.
func stripVolatile(cs []job.Check) []job.Check {
	out := append([]job.Check(nil), cs...)
	for i := range out {
		out[i].ElapsedNS, out[i].BuildTMNS, out[i].BuildSpecNS = 0, 0, 0
		out[i].FrontierPeak = 0
		out[i].Resumed = 0
		out[i].Limit = nil
	}
	return out
}

func mustRun(t *testing.T, sp job.Spec) *job.Result {
	t.Helper()
	res, err := job.Run(context.Background(), sp)
	if err != nil {
		t.Fatalf("job.Run(%s): %v", sp.Kind, err)
	}
	return res
}

func tl2Spec(kind job.Kind, workers int) job.Spec {
	return job.Spec{
		Kind:    kind,
		TM:      "tl2",
		Threads: 2, Vars: 2,
		Engine:  "materialized",
		Workers: workers,
	}
}

func TestResumeEquivalenceEveryBoundary(t *testing.T) {
	for _, kind := range []job.Kind{job.KindSafety, job.KindLiveness} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			baseline := mustRun(t, tl2Spec(kind, 1))
			want := stripVolatile(baseline.Checks)

			snapPath := filepath.Join(dir, "full.snap")
			sp := tl2Spec(kind, 1)
			sp.Checkpoint = snapPath
			ckpt := mustRun(t, sp)
			if !reflect.DeepEqual(stripVolatile(ckpt.Checks), want) {
				t.Fatalf("checkpointing changed the verdicts:\nwant %+v\ngot  %+v", want, ckpt.Checks)
			}

			bounds := recordBoundaries(t, snapPath)
			if len(bounds) < 4 {
				t.Fatalf("suspiciously few record boundaries: %v", bounds)
			}
			full := baseline.Checks[0].TMStates
			prefixDir := t.TempDir()
			for i, n := range bounds {
				boundaries := i > 0 // bounds[0] is the bare magic: no header record
				for _, workers := range []int{1, 4} {
					prefix := prefixFile(t, snapPath, n, prefixDir)
					rsp := tl2Spec(kind, workers)
					rsp.Resume = prefix
					res, err := job.Run(context.Background(), rsp)
					if !boundaries {
						// A file that never got its header is refused loudly,
						// not silently restarted.
						if err == nil || !strings.Contains(err.Error(), "no intact header record") {
							t.Fatalf("headerless prefix: want loud refusal, got %v", err)
						}
						continue
					}
					if err != nil {
						t.Fatalf("boundary %d/%d (offset %d) workers=%d: %v", i, len(bounds)-1, n, workers, err)
					}
					if got := stripVolatile(res.Checks); !reflect.DeepEqual(got, want) {
						t.Fatalf("boundary %d/%d (offset %d) workers=%d: verdicts diverge:\nwant %+v\ngot  %+v",
							i, len(bounds)-1, n, workers, want, got)
					}
					if i == len(bounds)-1 && res.Resumed() != full {
						t.Errorf("full snapshot workers=%d: Resumed() = %d, want %d", workers, res.Resumed(), full)
					}
				}
			}
		})
	}
}

func TestLimitedRunResumesToBaseline(t *testing.T) {
	dir := t.TempDir()
	baseline := mustRun(t, tl2Spec(job.KindSafety, 1))
	want := stripVolatile(baseline.Checks)

	snapPath := filepath.Join(dir, "lim.snap")
	sp := tl2Spec(job.KindSafety, 1)
	sp.Checkpoint = snapPath
	sp.MaxStates = 5000
	_, err := job.Run(context.Background(), sp)
	le := job.AsLimit(err)
	if le == nil {
		t.Fatalf("want a state-budget limit, got %v", err)
	}
	if le.Kind != guard.KindStates {
		t.Fatalf("limit kind = %d, want KindStates", le.Kind)
	}
	if le.Snapshot != snapPath {
		t.Fatalf("limit.Snapshot = %q, want %q", le.Snapshot, snapPath)
	}
	if !strings.Contains(le.Error(), "progress saved to snapshot") {
		t.Errorf("limit error does not name the snapshot: %v", le)
	}

	// Rerun with the budget raised: the run picks up where the limit
	// tripped and lands on the baseline verdicts.
	rsp := tl2Spec(job.KindSafety, 1)
	rsp.Checkpoint = snapPath
	rsp.Resume = snapPath
	res := mustRun(t, rsp)
	if got := stripVolatile(res.Checks); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed run diverges from baseline:\nwant %+v\ngot  %+v", want, got)
	}
	if res.Resumed() == 0 {
		t.Error("resumed run reports Resumed() == 0; the limited progress was thrown away")
	}
}
