//go:build !unix

package snap

import (
	"errors"
	"os"
)

// Without mmap the spill mode is unavailable; the grow panics into a
// guard-isolated LimitError with this message.
var errNoMmap = errors.New("disk spill (-spill) is not supported on this platform")

func mmapFile(f *os.File, size int) ([]byte, error) { return nil, errNoMmap }

func munmapBytes(b []byte) error { return nil }
