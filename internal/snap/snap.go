// Package snap persists the canonical exploration prefix of the packed
// engines: an append-only, versioned, CRC-framed checkpoint written at
// the same deterministic level barriers where -maxstates/-timeout/
// SIGTERM already stop, plus an mmap spill arena (spill.go) that moves
// the visited set's key storage onto disk so instances larger than RAM
// stay checkable.
//
// Because the per-level state numbering is bit-identical across
// engines and worker counts, the interned prefix at any barrier is
// canonical: a run resumed from a snapshot — by any engine, at any
// worker count, on any machine with the same binary registry —
// produces verdicts and counterexamples byte-identical to an
// uninterrupted run. The header carries the format version, the
// instance parameters, and a registry fingerprint so a mismatched
// resume fails loudly instead of silently diverging.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"tmcheck/internal/chaos"
	"tmcheck/internal/explore"
	"tmcheck/internal/obs"
	"tmcheck/internal/tm"
)

// FileOps is the slice of *os.File the store drives its backing file
// through. It exists as a seam: when a chaos plan is installed the
// writable file is wrapped in the fault-injecting chaos.WrapFile, so
// short writes, torn tails and fsync failures are exercised through
// exactly the code paths a real disk fault would take.
type FileOps interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Stat() (os.FileInfo, error)
	Close() error
}

// SyncMode says when appended records are fsynced — the crash-window
// knob of the -snap-sync flag (tradeoff documented in DESIGN.md).
type SyncMode uint8

const (
	// SyncAlways fsyncs every record: a SIGKILL loses at most the
	// record being written. The default.
	SyncAlways SyncMode = iota
	// SyncBatch fsyncs every Options.BatchEvery level records: a crash
	// may lose up to a batch of barriers, never file integrity (the
	// CRC framing truncates whatever tail didn't land).
	SyncBatch
	// SyncNone fsyncs only once, at Close: the OS decides when records
	// land. Fastest, widest crash window, same integrity guarantee.
	SyncNone
)

// defaultBatchEvery is the SyncBatch interval when none was given.
const defaultBatchEvery = 8

// ParseSyncMode parses a -snap-sync value: "always" (or ""), "none",
// "batch" (every 8 level records) or "batch:N".
func ParseSyncMode(s string) (SyncMode, int, error) {
	switch s {
	case "", "always":
		return SyncAlways, 0, nil
	case "none":
		return SyncNone, 0, nil
	case "batch":
		return SyncBatch, defaultBatchEvery, nil
	}
	if rest, ok := strings.CutPrefix(s, "batch:"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return 0, 0, fmt.Errorf("snap: -snap-sync batch interval must be a positive integer, got %q", rest)
		}
		return SyncBatch, n, nil
	}
	return 0, 0, fmt.Errorf("snap: unknown sync mode %q (always, batch, batch:N, none)", s)
}

// Options shapes a store opened by OpenRunOpts.
type Options struct {
	// Sync is the fsync policy for appended records.
	Sync SyncMode
	// BatchEvery is the record interval between fsyncs under SyncBatch
	// (<= 0 takes the default of 8).
	BatchEvery int
	// Strict makes persist-path I/O errors fail the run (-strict-persist).
	// The default degrades instead: the store stops appending, warns
	// loudly once, and the check continues unpersisted — the snapshot
	// file keeps its last valid prefix.
	Strict bool
}

// section is the persisted state of one explored system: the canonical
// prefix (all interned keys in id order, the adjacency of the expanded
// states) and the barrier coordinates it reaches.
type section struct {
	id             uint32
	tmName, cmName string
	kw, keyBits    int

	keys               []uint64
	out                [][]explore.Edge
	interned, expanded int
}

func (sec *section) label() string {
	if sec.cmName == "" {
		return sec.tmName
	}
	return sec.tmName + "+" + sec.cmName
}

// Store is one open snapshot: a map from system identity to persisted
// section, backed by an append-only file. A writable store (opened
// with a checkpoint path) appends one fsynced record per level barrier
// and keeps its in-memory sections current, so a second build of the
// same section in one process resumes instantly; a read-only store
// (resume path only) never writes. Store is safe for concurrent use
// by parallel table rows.
type Store struct {
	mu       sync.Mutex
	f        FileOps // nil for a read-only store
	path     string
	readOnly bool

	syncMode   SyncMode
	batchEvery int
	unsynced   int
	strict     bool
	degraded   bool

	threads, vars int
	sections      map[string]*section
	byID          map[uint32]*section
	nextID        uint32
}

// OpenRun opens the snapshot store of one run for an instance of the
// given parameters. checkpointPath, when non-empty, names the writable
// snapshot: created if absent, loaded and appended to if present (so
// rerunning the same -checkpoint command auto-resumes). resumePath,
// when non-empty, names a snapshot to seed from; combined with a
// different checkpoint path its sections are carried over into the new
// snapshot. Both empty returns (nil, nil).
func OpenRun(resumePath, checkpointPath string, threads, vars int) (*Store, error) {
	return OpenRunOpts(resumePath, checkpointPath, threads, vars, Options{})
}

// OpenRunOpts is OpenRun with explicit sync and strictness options for
// the writable store.
func OpenRunOpts(resumePath, checkpointPath string, threads, vars int, o Options) (*Store, error) {
	if resumePath == checkpointPath {
		resumePath = ""
	}
	if checkpointPath == "" && resumePath == "" {
		return nil, nil
	}
	var src *Store
	if resumePath != "" {
		var err error
		src, err = open(resumePath, true, threads, vars, o)
		if err != nil {
			return nil, err
		}
		if checkpointPath == "" {
			return src, nil
		}
	}
	st, err := open(checkpointPath, false, threads, vars, o)
	if err != nil {
		return nil, err
	}
	if src != nil {
		if err := st.adopt(src); err != nil {
			st.Close()
			return nil, err
		}
	}
	return st, nil
}

// open loads (or, for a writable store, creates) one snapshot file.
func open(path string, readOnly bool, threads, vars int, o Options) (*Store, error) {
	flags, mode := os.O_RDWR|os.O_CREATE, os.FileMode(0o644)
	if readOnly {
		flags, mode = os.O_RDONLY, 0
	}
	f, err := os.OpenFile(path, flags, mode)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	batch := o.BatchEvery
	if batch <= 0 {
		batch = defaultBatchEvery
	}
	s := &Store{
		f: f, path: path, readOnly: readOnly,
		syncMode: o.Sync, batchEvery: batch, strict: o.Strict,
		threads: threads, vars: vars,
		sections: make(map[string]*section),
		byID:     make(map[uint32]*section),
	}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	if readOnly {
		f.Close()
		s.f = nil
	} else if chaos.Enabled() {
		// Interpose the fault plan only after the load replay: open-time
		// recovery (truncation, header rewrite) is not an append path,
		// and injecting there would turn a planted fault into an
		// untyped open error instead of a degradable append error.
		s.f = chaos.WrapFile(s.f)
	}
	return s, nil
}

// load replays the file into memory. A writable store truncates a torn
// tail (a record cut short by SIGKILL or disk-full) back to the last
// intact record; header corruption, a registry or instance mismatch,
// and out-of-order level records are refused loudly.
func (s *Store) load() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	if info.Size() == 0 {
		if s.readOnly {
			return fmt.Errorf("snap: %s is empty", s.path)
		}
		if _, err := s.f.Write([]byte(magic)); err != nil {
			return fmt.Errorf("snap: %s: %w", s.path, err)
		}
		return s.appendLocked(encodeHeader(s.threads, s.vars))
	}
	var mg [len(magic)]byte
	if _, err := io.ReadFull(s.f, mg[:]); err != nil || string(mg[:]) != magic {
		return fmt.Errorf("snap: %s is not a tmcheck snapshot (bad magic)", s.path)
	}
	valid := int64(len(magic))
	sawHeader := false
	var hdr [8]byte
	buf := make([]byte, 0, 1<<16)
	for {
		if _, err := io.ReadFull(s.f, hdr[:]); err != nil {
			break // clean EOF or torn frame header
		}
		plen := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if int64(plen) > info.Size()-valid-8 {
			break // torn tail: record extends past EOF
		}
		if cap(buf) < int(plen) {
			buf = make([]byte, plen)
		}
		buf = buf[:plen]
		if _, err := io.ReadFull(s.f, buf); err != nil {
			break
		}
		if crc32.ChecksumIEEE(buf) != want {
			break // torn or corrupted tail: drop this record and the rest
		}
		if err := s.apply(buf, &sawHeader); err != nil {
			return err
		}
		valid += 8 + int64(plen)
	}
	if !sawHeader {
		if s.readOnly {
			return fmt.Errorf("snap: %s has no intact header record", s.path)
		}
		// The writer died between the magic and the header fsync; the
		// file holds nothing, so reinitialize it.
		if err := s.f.Truncate(int64(len(magic))); err != nil {
			return fmt.Errorf("snap: %s: %w", s.path, err)
		}
		if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
			return fmt.Errorf("snap: %s: %w", s.path, err)
		}
		return s.appendLocked(encodeHeader(s.threads, s.vars))
	}
	if !s.readOnly && valid < info.Size() {
		if err := s.f.Truncate(valid); err != nil {
			return fmt.Errorf("snap: %s: truncating torn tail: %w", s.path, err)
		}
	}
	if !s.readOnly {
		if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
			return fmt.Errorf("snap: %s: %w", s.path, err)
		}
	}
	return nil
}

// apply replays one intact record into the in-memory sections.
func (s *Store) apply(payload []byte, sawHeader *bool) error {
	if len(payload) == 0 {
		return fmt.Errorf("snap: %s: empty record", s.path)
	}
	if payload[0] != recHeader && !*sawHeader {
		return fmt.Errorf("snap: %s: record before header", s.path)
	}
	d := &decoder{b: payload[1:]}
	switch payload[0] {
	case recHeader:
		version := d.u32()
		fp := d.u64()
		threads := int(d.u32())
		vars := int(d.u32())
		if d.bad {
			return fmt.Errorf("snap: %s: malformed header record", s.path)
		}
		if version != FormatVersion {
			return fmt.Errorf("snap: %s has format version %d; this binary reads version %d", s.path, version, FormatVersion)
		}
		if fp != Fingerprint() {
			return fmt.Errorf("snap: %s was written by a binary with a different TM/CM registry (fingerprint %#x, want %#x) — refusing to resume", s.path, fp, Fingerprint())
		}
		if threads != s.threads || vars != s.vars {
			return fmt.Errorf("snap: %s was written for instance (%d,%d); this run is (%d,%d) — refusing to resume", s.path, threads, vars, s.threads, s.vars)
		}
		*sawHeader = true
	case recSection:
		sec := &section{id: d.u32()}
		sec.tmName = d.str()
		sec.cmName = d.str()
		sec.kw = int(d.u32())
		sec.keyBits = int(d.u32())
		if d.bad || sec.kw < 1 {
			return fmt.Errorf("snap: %s: malformed section record", s.path)
		}
		if _, dup := s.byID[sec.id]; dup {
			return fmt.Errorf("snap: %s: duplicate section id %d", s.path, sec.id)
		}
		s.sections[sec.label()] = sec
		s.byID[sec.id] = sec
		if sec.id >= s.nextID {
			s.nextID = sec.id + 1
		}
	case recLevel:
		id := d.u32()
		sec, ok := s.byID[id]
		if !ok {
			return fmt.Errorf("snap: %s: level record for unknown section %d", s.path, id)
		}
		lr, err := decodeLevel(d, sec.kw)
		if err != nil {
			return fmt.Errorf("%w (%s, section %s)", err, s.path, sec.label())
		}
		if err := sec.merge(lr); err != nil {
			return fmt.Errorf("snap: %s: %w", s.path, err)
		}
	default:
		return fmt.Errorf("snap: %s: unknown record type %d", s.path, payload[0])
	}
	return nil
}

// merge applies one level delta to the section: records extending the
// current state advance it, stale duplicates (idempotent replays) are
// skipped, and a forward gap — data the file never contained — is
// corruption.
func (sec *section) merge(lr levelRecord) error {
	switch {
	case lr.prevI == sec.interned && lr.prevE == sec.expanded:
		sec.keys = append(sec.keys, lr.keys...)
		sec.out = append(sec.out, lr.out...)
		sec.interned, sec.expanded = lr.interned, lr.expanded
		return nil
	case lr.interned <= sec.interned && lr.expanded <= sec.expanded:
		return nil // stale duplicate of an already-merged delta
	default:
		return fmt.Errorf("section %s: level record (%d,%d)→(%d,%d) does not extend snapshot state (%d,%d)",
			sec.label(), lr.prevI, lr.prevE, lr.interned, lr.expanded, sec.interned, sec.expanded)
	}
}

// adopt carries every section of a read-only source snapshot that is
// ahead of this store into it, appending one catch-up record per
// section — the -resume FILE -checkpoint OTHER case.
func (s *Store) adopt(src *Store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ss := range src.sections {
		sec, err := s.sectionLocked(ss.tmName, ss.cmName, ss.kw, ss.keyBits)
		if err != nil {
			return err
		}
		if ss.interned <= sec.interned && ss.expanded <= sec.expanded {
			continue
		}
		if sec.interned > 0 {
			// Both snapshots hold canonical prefixes of the same system,
			// so the shorter is a prefix of the longer; splicing the tail
			// on is exact.
			for i, w := range sec.keys {
				if ss.keys[i] != w {
					return fmt.Errorf("snap: %s and %s disagree on section %s — refusing to merge", src.path, s.path, sec.label())
				}
			}
		}
		lr := levelRecord{
			prevI: sec.interned, interned: ss.interned,
			prevE: sec.expanded, expanded: ss.expanded,
			keys: ss.keys[sec.interned*sec.kw:],
			out:  ss.out[sec.expanded:],
		}
		payload := encodeLevel(sec.id, lr.prevI, lr.interned, lr.prevE, lr.expanded, lr.keys, lr.out)
		if err := s.appendLocked(payload); err != nil {
			return err
		}
		if err := sec.merge(lr); err != nil {
			return err
		}
	}
	return nil
}

// sectionLocked finds or (on a writable store) creates the section for
// one system, validating its key geometry.
func (s *Store) sectionLocked(tmName, cmName string, kw, keyBits int) (*section, error) {
	label := tmName
	if cmName != "" {
		label = tmName + "+" + cmName
	}
	sec, ok := s.sections[label]
	if !ok {
		if s.readOnly {
			// Nothing saved for this system — a checkpoint killed before
			// its section record, or a table snapshot cut short before a
			// later row. There is no prefix to lose, so the build starts
			// fresh rather than refusing.
			return nil, nil
		}
		sec = &section{id: s.nextID, tmName: tmName, cmName: cmName, kw: kw, keyBits: keyBits}
		s.nextID++
		if err := s.appendLocked(encodeSection(sec)); err != nil {
			return nil, err
		}
		s.sections[label] = sec
		s.byID[sec.id] = sec
		return sec, nil
	}
	if sec.kw != kw || sec.keyBits != keyBits {
		return nil, fmt.Errorf("snap: %s: section %s was written with a %d-bit key (%d words); this binary packs %d bits (%d words) — refusing to resume",
			s.path, label, sec.keyBits, sec.kw, keyBits, kw)
	}
	return sec, nil
}

// Persist resolves the persistence hooks for one system: the canonical
// prefix to resume from (nil when the snapshot holds nothing for it —
// including a read-only snapshot cut short before this system's
// section record, which resumes as a fresh build) and, on a writable
// store, the sink that checkpoints its level barriers. It implements explore.PersistProvider up to the spill
// growers, which the job layer attaches.
func (s *Store) Persist(alg tm.Algorithm, cm tm.ContentionManager) (*explore.Persist, error) {
	kw, keyBits, ok := explore.PackedInfo(alg, cm)
	if !ok {
		label := alg.Name()
		if cm != nil {
			label += "+" + cm.Name()
		}
		return nil, fmt.Errorf("snap: %s is not bit-packable; -checkpoint/-resume require a packed system", label)
	}
	cmName := ""
	if cm != nil {
		cmName = cm.Name()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sec, err := s.sectionLocked(alg.Name(), cmName, kw, keyBits)
	if err != nil {
		return nil, err
	}
	p := &explore.Persist{}
	if sec == nil {
		return p, nil // read-only store with nothing for this system
	}
	if sec.interned > 0 {
		p.Resume = &explore.ResumeState{
			// Copy the headers: the scan owns its view while the sink
			// appends to the section's slices.
			Keys:     sec.keys[: sec.interned*sec.kw : sec.interned*sec.kw],
			Out:      sec.out[:sec.expanded:sec.expanded],
			Interned: sec.interned,
			Expanded: sec.expanded,
		}
	}
	if !s.readOnly {
		p.Sink = &sectionSink{s: s, sec: sec}
	}
	return p, nil
}

// sectionSink streams one build's level deltas into the store.
type sectionSink struct {
	s   *Store
	sec *section
}

func (k *sectionSink) AppendLevel(newKeys []uint64, out [][]explore.Edge, prevInterned, interned, prevExpanded, expanded int) error {
	s, sec := k.s, k.sec
	s.mu.Lock()
	defer s.mu.Unlock()
	lr := levelRecord{
		prevI: prevInterned, interned: interned,
		prevE: prevExpanded, expanded: expanded,
		keys: newKeys,
		out:  out[prevExpanded:expanded],
	}
	if lr.interned <= sec.interned && lr.expanded <= sec.expanded {
		return nil // replaying an already-persisted prefix (idempotent)
	}
	if lr.prevI != sec.interned || lr.prevE != sec.expanded {
		return fmt.Errorf("snap: %s: section %s: barrier (%d,%d) does not extend snapshot state (%d,%d)",
			s.path, sec.label(), interned, expanded, sec.interned, sec.expanded)
	}
	if err := s.appendLocked(encodeLevel(sec.id, lr.prevI, lr.interned, lr.prevE, lr.expanded, lr.keys, lr.out)); err != nil {
		return err
	}
	sec.keys = append(sec.keys, newKeys...)
	sec.out = append(sec.out, lr.out...)
	sec.interned, sec.expanded = interned, expanded
	return nil
}

// appendLocked writes one framed record and syncs it per the store's
// sync mode; callers hold s.mu (or have exclusive access during load).
// An I/O error on a non-strict store degrades it instead of failing:
// the store stops touching the file (whose intact prefix the CRC
// framing preserves — a torn tail from a failed write is truncated on
// the next open), keeps merging deltas in memory so the run continues
// correct but unpersisted, warns loudly once, and bumps the
// snap.degraded vital. A strict store returns the error.
func (s *Store) appendLocked(payload []byte) error {
	if s.degraded {
		return nil
	}
	err := s.writeRecordLocked(payload)
	if err == nil || s.strict {
		return err
	}
	s.degraded = true
	obs.Inc("snap.degraded", 1)
	fmt.Fprintf(os.Stderr,
		"tmcheck: DEGRADED(snapshot): %v — continuing without persistence; %s keeps its last valid prefix (rerun with -strict-persist to fail instead)\n",
		err, s.path)
	return nil
}

func (s *Store) writeRecordLocked(payload []byte) error {
	if _, err := s.f.Write(frame(payload)); err != nil {
		return fmt.Errorf("snap: %s: %w", s.path, err)
	}
	switch s.syncMode {
	case SyncAlways:
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("snap: %s: %w", s.path, err)
		}
	case SyncBatch:
		s.unsynced++
		if s.unsynced >= s.batchEvery {
			if err := s.f.Sync(); err != nil {
				return fmt.Errorf("snap: %s: %w", s.path, err)
			}
			s.unsynced = 0
		}
	}
	return nil
}

// Degraded reports whether a persist-path I/O error switched the store
// into in-memory-only mode.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Path returns the snapshot file path (the writable one when both a
// resume and checkpoint were given).
func (s *Store) Path() string { return s.path }

// Resumable reports how many states the snapshot holds for the given
// system label ("alg" or "alg+cm"), for "resumed from N states"
// reporting and tests.
func (s *Store) Resumable(label string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sec, ok := s.sections[label]; ok {
		return sec.interned
	}
	return 0
}

// Close closes the backing file, flushing any batch-mode records that
// have not been fsynced yet; a read-only store is already closed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var err error
	if !s.degraded && s.syncMode != SyncAlways {
		err = s.f.Sync()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
