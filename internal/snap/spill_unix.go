//go:build unix

package snap

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f shared read-write: writes reach the
// file, so a remap after truncate sees the same contents.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func munmapBytes(b []byte) error { return syscall.Munmap(b) }
