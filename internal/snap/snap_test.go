package snap

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tmcheck/internal/explore"
	"tmcheck/internal/pack"
	"tmcheck/internal/tm"
)

// buildStored runs one materialized build of the system through the
// store's persistence hooks.
func buildStored(t *testing.T, s *Store, alg tm.Algorithm, cm tm.ContentionManager, workers int) *explore.TS {
	t.Helper()
	p, err := s.Persist(alg, cm)
	if err != nil {
		t.Fatalf("Persist: %v", err)
	}
	ts, err := explore.BuildPersistGuarded(alg, cm, workers, nil, p)
	if err != nil {
		t.Fatalf("BuildPersistGuarded: %v", err)
	}
	return ts
}

// sameTS asserts two builds agree state-for-state and edge-for-edge —
// the bit-identical contract a resumed build must meet.
func sameTS(t *testing.T, want, got *explore.TS) {
	t.Helper()
	if want.NumStates() != got.NumStates() {
		t.Fatalf("states: want %d, got %d", want.NumStates(), got.NumStates())
	}
	if want.NumEdges() != got.NumEdges() {
		t.Fatalf("edges: want %d, got %d", want.NumEdges(), got.NumEdges())
	}
	for i := range want.Out {
		if !reflect.DeepEqual(want.Out[i], got.Out[i]) {
			t.Fatalf("state %d: adjacency differs:\nwant %v\ngot  %v", i, want.Out[i], got.Out[i])
		}
	}
}

func wantErrContaining(t *testing.T, err error, sub string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error containing %q, got nil", sub)
	}
	if !strings.Contains(err.Error(), sub) {
		t.Fatalf("want error containing %q, got: %v", sub, err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tl2.snap")
	base, err := explore.BuildGuarded(tm.NewTL2(2, 2), nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	st, err := OpenRun("", path, 2, 2)
	if err != nil {
		t.Fatalf("OpenRun(checkpoint): %v", err)
	}
	ts := buildStored(t, st, tm.NewTL2(2, 2), nil, 1)
	sameTS(t, base, ts)
	if ts.Resumed != 0 {
		t.Errorf("fresh checkpointed build reports Resumed = %d", ts.Resumed)
	}
	if got := st.Resumable("tl2"); got != base.NumStates() {
		t.Errorf("Resumable(tl2) = %d, want %d", got, base.NumStates())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume-only reopen: the build must come back bit-identical,
	// entirely from the snapshot, at any worker count.
	for _, workers := range []int{1, 4} {
		ro, err := OpenRun(path, "", 2, 2)
		if err != nil {
			t.Fatalf("OpenRun(resume): %v", err)
		}
		ts2 := buildStored(t, ro, tm.NewTL2(2, 2), nil, workers)
		sameTS(t, base, ts2)
		if ts2.Resumed != base.NumStates() {
			t.Errorf("workers=%d: Resumed = %d, want %d", workers, ts2.Resumed, base.NumStates())
		}
	}
}

func TestRerunSameCheckpointResumesInstantly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dstm.snap")
	st, err := OpenRun("", path, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := buildStored(t, st, tm.NewDSTM(2, 2), nil, 1)
	full := st.Resumable("dstm")
	if full != ts.NumStates() {
		t.Fatalf("Resumable = %d, want %d", full, ts.NumStates())
	}
	size1 := fileSize(t, path)

	// Second build on the same open store: the sink replays an
	// already-persisted prefix and must stay idempotent (no new
	// records, no merge errors) — the budgeted table2 driver builds the
	// same section twice (SS then OP).
	ts2 := buildStored(t, st, tm.NewDSTM(2, 2), nil, 1)
	if ts2.Resumed != full {
		t.Errorf("second build Resumed = %d, want %d", ts2.Resumed, full)
	}
	sameTS(t, ts, ts2)
	if size2 := fileSize(t, path); size2 != size1 {
		t.Errorf("idempotent rebuild grew the snapshot: %d → %d bytes", size1, size2)
	}
	st.Close()

	// Rerunning the same -checkpoint command auto-resumes.
	st2, err := OpenRun("", path, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ts3 := buildStored(t, st2, tm.NewDSTM(2, 2), nil, 1)
	if ts3.Resumed != full {
		t.Errorf("reopened checkpoint Resumed = %d, want %d", ts3.Resumed, full)
	}
	sameTS(t, ts, ts3)
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// writeSnapshot builds one tl2 (2,2) checkpoint and returns its path
// and the full state count.
func writeSnapshot(t *testing.T) (string, int) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tl2.snap")
	st, err := OpenRun("", path, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := buildStored(t, st, tm.NewTL2(2, 2), nil, 1)
	st.Close()
	return path, ts.NumStates()
}

func TestTornTailTruncated(t *testing.T) {
	path, full := writeSnapshot(t)
	size := fileSize(t, path)

	// A frame header promising more bytes than the file holds — the
	// shape SIGKILL mid-append leaves behind.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := OpenRun("", path, 2, 2)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer st.Close()
	if got := st.Resumable("tl2"); got != full {
		t.Errorf("Resumable after torn tail = %d, want %d", got, full)
	}
	if got := fileSize(t, path); got != size {
		t.Errorf("torn tail not truncated: %d bytes, want %d", got, size)
	}
}

func TestTornRecordDropsOnlyTail(t *testing.T) {
	path, full := writeSnapshot(t)
	size := fileSize(t, path)

	// Cut deep into the file, mid-record: the valid prefix must load
	// and a rerun must rebuild only the missing tail, landing on the
	// same system.
	if err := os.Truncate(path, size*3/5); err != nil {
		t.Fatal(err)
	}
	st, err := OpenRun("", path, 2, 2)
	if err != nil {
		t.Fatalf("reopen truncated: %v", err)
	}
	kept := st.Resumable("tl2")
	if kept >= full {
		t.Fatalf("Resumable after truncation = %d, want < %d", kept, full)
	}
	ts, err := explore.BuildGuarded(tm.NewTL2(2, 2), nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := buildStored(t, st, tm.NewTL2(2, 2), nil, 1)
	if got.Resumed != kept {
		t.Errorf("Resumed = %d, want %d", got.Resumed, kept)
	}
	sameTS(t, ts, got)
	if st.Resumable("tl2") != full {
		t.Errorf("rebuild did not restore the snapshot: Resumable = %d, want %d", st.Resumable("tl2"), full)
	}
	st.Close()
}

func TestHeaderCorruptionRefused(t *testing.T) {
	path, _ := writeSnapshot(t)

	// Flip a byte inside the header record's payload (offset 16 is the
	// record type byte right after magic + frame header): the CRC no
	// longer matches, so the file has no intact header.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[17] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenRun(path, "", 2, 2)
	wantErrContaining(t, err, "no intact header record")
}

func TestBadMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.snap")
	if err := os.WriteFile(path, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenRun(path, "", 2, 2)
	wantErrContaining(t, err, "not a tmcheck snapshot")
}

// craftHeader writes a file holding the magic and one intact header
// record with the given fields — the mismatch cases need a valid CRC.
func craftHeader(t *testing.T, version uint32, fp uint64, threads, vars int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "crafted.snap")
	b := []byte{recHeader}
	b = appendU32(b, version)
	b = appendU64(b, fp)
	b = appendU32(b, uint32(threads))
	b = appendU32(b, uint32(vars))
	if err := os.WriteFile(path, append([]byte(magic), frame(b)...), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVersionMismatchRefused(t *testing.T) {
	path := craftHeader(t, FormatVersion+1, Fingerprint(), 2, 2)
	_, err := OpenRun(path, "", 2, 2)
	wantErrContaining(t, err, "format version")
}

func TestFingerprintMismatchRefused(t *testing.T) {
	path := craftHeader(t, FormatVersion, Fingerprint()+1, 2, 2)
	_, err := OpenRun(path, "", 2, 2)
	wantErrContaining(t, err, "different TM/CM registry")
}

func TestInstanceMismatchRefused(t *testing.T) {
	path, _ := writeSnapshot(t) // written for (2,2)
	_, err := OpenRun(path, "", 3, 2)
	wantErrContaining(t, err, "was written for instance (2,2)")

	// The writable path refuses too: auto-resuming a -checkpoint file
	// from a different instance would silently mix state spaces.
	_, err = OpenRun("", path, 3, 2)
	wantErrContaining(t, err, "was written for instance (2,2)")
}

func TestEmptyResumeRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.snap")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenRun(path, "", 2, 2)
	wantErrContaining(t, err, "is empty")
}

func TestResumeMissingSectionStartsFresh(t *testing.T) {
	path, _ := writeSnapshot(t) // holds tl2 only
	st, err := OpenRun(path, "", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A read-only snapshot with nothing for this system resumes as a
	// fresh, unpersisted build — a checkpoint killed before the section
	// record lost nothing worth refusing over.
	p, err := st.Persist(tm.NewDSTM(2, 2), nil)
	if err != nil {
		t.Fatalf("Persist(dstm): %v", err)
	}
	if p.Resume != nil || p.Sink != nil {
		t.Errorf("want an empty Persist, got Resume=%v Sink=%v", p.Resume, p.Sink)
	}
	ts, err := explore.BuildPersistGuarded(tm.NewDSTM(2, 2), nil, 1, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Resumed != 0 {
		t.Errorf("Resumed = %d, want 0", ts.Resumed)
	}
}

func TestAdoptCarriesSectionsForward(t *testing.T) {
	src, full := writeSnapshot(t)
	dst := filepath.Join(t.TempDir(), "next.snap")

	// -resume FILE -checkpoint OTHER: the new snapshot starts with the
	// old one's sections.
	st, err := OpenRun(src, dst, 2, 2)
	if err != nil {
		t.Fatalf("OpenRun(resume+checkpoint): %v", err)
	}
	if got := st.Resumable("tl2"); got != full {
		t.Fatalf("adopted Resumable = %d, want %d", got, full)
	}
	if st.Path() != dst {
		t.Errorf("Path() = %q, want the writable path %q", st.Path(), dst)
	}
	ts := buildStored(t, st, tm.NewTL2(2, 2), nil, 1)
	if ts.Resumed != full {
		t.Errorf("Resumed = %d, want %d", ts.Resumed, full)
	}
	st.Close()

	// The new file is a complete snapshot on its own.
	ro, err := OpenRun(dst, "", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ro.Resumable("tl2"); got != full {
		t.Errorf("adopted snapshot standalone Resumable = %d, want %d", got, full)
	}
}

func TestOpenRunSamePathIsCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "same.snap")
	st, err := OpenRun(path, path, 2, 2)
	if err != nil {
		t.Fatalf("OpenRun(same, same): %v", err)
	}
	defer st.Close()
	// Equal paths collapse to a plain checkpoint open: the file is
	// created rather than refused as a missing resume source.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not created: %v", err)
	}
}

func TestSpillBackedBuildMatches(t *testing.T) {
	dir := t.TempDir()
	base, err := explore.BuildGuarded(tm.NewTL2(2, 2), nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		sp := NewSpill(dir)
		p := &explore.Persist{Grow: sp.Grow(), GrowShard: func(int) pack.GrowFunc { return sp.Grow() }}
		ts, err := explore.BuildPersistGuarded(tm.NewTL2(2, 2), nil, workers, nil, p)
		if err != nil {
			sp.Close()
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameTS(t, base, ts)
		if err := sp.Close(); err != nil {
			t.Errorf("workers=%d: Close: %v", workers, err)
		}
		left, err := filepath.Glob(filepath.Join(dir, "tmspill-*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(left) != 0 {
			t.Errorf("workers=%d: spill files left behind: %v", workers, left)
		}
	}
}

func TestSpillGrowPreservesContents(t *testing.T) {
	sp := NewSpill(t.TempDir())
	defer sp.Close()
	grow := sp.Grow()
	w := grow(4, nil)
	w = append(w, 1, 2, 3, 4)
	// Grow past the initial region repeatedly; earlier words must
	// survive each remap (they persist through the backing file).
	for want := 8; want <= minSpillBytes/4; want *= 8 {
		w = grow(want, w)
		for len(w) < want {
			w = append(w, uint64(len(w)))
		}
	}
	for i, v := range w[:4] {
		if v != uint64(i+1) {
			t.Fatalf("w[%d] = %d after regrowth, want %d", i, v, i+1)
		}
	}
	for i := 4; i < len(w); i++ {
		if w[i] != uint64(i) {
			t.Fatalf("w[%d] = %d after regrowth, want %d", i, w[i], i)
		}
	}
}
