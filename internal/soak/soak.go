// Package soak is the chaos-soak harness behind the hidden `tmcheck
// chaos-soak` subcommand: for each seed it derives a deterministic
// fault plan (internal/chaos), runs real verification jobs — local
// checkpointed+spilled runs and a remote run through an in-process
// tmcheckd with the retrying client — and asserts the robustness
// invariant the chaos layer promises:
//
//	a fault-injected run either produces a verdict byte-identical to
//	the fault-free run, or fails with a typed error (guard limit /
//	wire connection loss). Never a hang, never corrupt output, never
//	a silently wrong verdict.
//
// Limited local runs are additionally resumed fault-free from their
// snapshot and must then reproduce the baseline exactly — the
// crash-recover-resume path under test end to end.
package soak

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tmcheck/internal/chaos"
	"tmcheck/internal/guard"
	"tmcheck/internal/job"
	"tmcheck/internal/jobd"
	"tmcheck/internal/wire"
)

// Config shapes one soak campaign.
type Config struct {
	// Seeds is how many consecutive seeds to run; <= 0 takes 64.
	Seeds int
	// First is the first seed; 0 takes 1 (seed 0 has no plan).
	First uint64
	// Dir is the scratch directory for snapshots and spill files; ""
	// creates (and removes) a temp directory.
	Dir string
	// NoRemote skips the in-process daemon + retrying-client case.
	NoRemote bool
	// Verbose prints one line per seed to Out instead of a summary only.
	Verbose bool
	// Out receives the report; nil takes os.Stderr.
	Out io.Writer
}

// soakBudget caps every soak job's states; far above the (2,2)
// instances' real sizes, so the guard is armed but only an injected
// fault can trip it.
const soakBudget = 5_000_000

// localCase is one fault-injected local job shape.
type localCase struct {
	name string
	tm   string
}

var localCases = []localCase{{"tl2", "tl2"}, {"dstm", "dstm"}}

// Run executes the campaign and returns an error describing the first
// invariant violation (nil when every seed holds).
func Run(ctx context.Context, cfg Config) error {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 64
	}
	if cfg.First == 0 {
		cfg.First = 1
	}
	if cfg.Out == nil {
		cfg.Out = os.Stderr
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "tmsoak-*"); err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	chaos.Uninstall() // baselines must be fault-free
	defer chaos.Uninstall()

	// Fault-free baselines, one per (tm, workers) shape the chaos runs
	// will be compared against.
	baselines := map[string][]byte{}
	for _, lc := range localCases {
		for workers := 1; workers <= 2; workers++ {
			res, err := job.Run(ctx, soakSpec(lc.tm, workers))
			if err != nil {
				return fmt.Errorf("soak: fault-free baseline %s/w%d failed: %w", lc.name, workers, err)
			}
			baselines[baselineKey(lc.tm, workers)] = normalize(res)
		}
	}

	// One in-process daemon serves every seed's remote case; its jobs
	// run in this process, so the installed fault plan reaches the
	// server-side engines too.
	var addr string
	var srv *jobd.Server
	if !cfg.NoRemote {
		srv = jobd.New(jobd.Config{Jobs: 2, SnapDir: dir, Heartbeat: 200 * time.Millisecond,
			Logf: func(string, ...any) {}})
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("soak: daemon: %w", err)
		}
		defer srv.Close()
		addr = bound.String()
	}

	counts := map[string]int{}
	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.First + uint64(i)
		if err := ctx.Err(); err != nil {
			return err
		}
		outcomes, err := runSeed(ctx, seed, dir, addr, baselines)
		if err != nil {
			return fmt.Errorf("soak: seed %d: %w", seed, err)
		}
		for _, o := range outcomes {
			counts[strings.TrimPrefix(o, "remote:")]++
		}
		if cfg.Verbose {
			fmt.Fprintf(cfg.Out, "chaos-soak: seed %d: %v — %v\n", seed, chaos.NewPlan(seed).Armed(), outcomes)
		}
	}
	fmt.Fprintf(cfg.Out,
		"chaos-soak: %d seed(s) ok: %d matched baseline, %d typed limit (%d of those resumed to baseline), %d typed transport error, 0 violations\n",
		cfg.Seeds, counts["match"], counts["limit"]+counts["resumed"], counts["resumed"], counts["lost"])
	return nil
}

// runSeed installs seed's plan, runs the local and remote cases, and
// classifies every outcome against the invariant.
func runSeed(ctx context.Context, seed uint64, dir, addr string, baselines map[string][]byte) ([]string, error) {
	chaos.Install(chaos.NewPlan(seed))
	defer chaos.Uninstall()
	var outcomes []string

	workers := 1 + int(seed%2)
	for _, lc := range localCases {
		sp := soakSpec(lc.tm, workers)
		sp.Checkpoint = filepath.Join(dir, fmt.Sprintf("s%d-%s.snap", seed, lc.name))
		sp.Spill = dir
		res, err := job.Run(ctx, sp)
		outcome, cerr := classify(baselines[baselineKey(lc.tm, workers)], res, err)
		if cerr != nil {
			return nil, fmt.Errorf("local %s/w%d: %w", lc.name, workers, cerr)
		}
		if outcome == "limit" {
			// The crash-recovery promise: a limited run's snapshot prefix
			// must resume — fault-free — to the exact baseline verdict.
			if ok, rerr := resumesToBaseline(ctx, sp, baselines[baselineKey(lc.tm, workers)]); rerr != nil {
				return nil, fmt.Errorf("local %s/w%d: resume after limit: %w", lc.name, workers, rerr)
			} else if ok {
				outcome = "resumed"
			}
		}
		outcomes = append(outcomes, outcome)
		_ = os.Remove(sp.Checkpoint)
	}

	if addr != "" {
		sp := soakSpec("dstm", 1)
		sp.Checkpoint = fmt.Sprintf("r%d.snap", seed) // server resolves into its -snap-dir
		res, err := wire.RunRetry(ctx, addr, sp, wire.RetryConfig{
			Attempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond,
			HeartbeatTimeout: 2 * time.Second,
		}, nil)
		outcome, cerr := classify(baselines[baselineKey("dstm", 1)], res, err)
		if cerr != nil {
			return nil, fmt.Errorf("remote dstm: %w", cerr)
		}
		outcomes = append(outcomes, "remote:"+outcome)
		_ = os.Remove(filepath.Join(dir, sp.Checkpoint))
	}
	return outcomes, nil
}

// resumesToBaseline reruns sp fault-free from its checkpoint and
// reports whether the verdict matches baseline; a missing snapshot
// (the fault hit before anything persisted) is a clean false.
func resumesToBaseline(ctx context.Context, sp job.Spec, baseline []byte) (bool, error) {
	if _, err := os.Stat(sp.Checkpoint); err != nil {
		return false, nil
	}
	// Suspend injection for the resume run, then restore the seed's
	// plan with its counters as they were (consumed sites stay spent).
	prev := chaos.Current()
	chaos.Uninstall()
	defer chaos.Install(prev)
	sp.Resume = sp.Checkpoint
	sp.Spill = ""
	res, err := job.Run(ctx, sp)
	if err != nil {
		return false, err
	}
	if got := normalize(res); !bytes.Equal(got, baseline) {
		return false, fmt.Errorf("resumed verdict differs from baseline:\n--- baseline ---\n%s--- resumed ---\n%s", baseline, got)
	}
	return true, nil
}

// classify applies the invariant to one run's outcome.
func classify(baseline []byte, res *job.Result, err error) (string, error) {
	switch {
	case err == nil:
		got := normalize(res)
		if !bytes.Equal(got, baseline) {
			return "", fmt.Errorf("INVARIANT VIOLATION: fault-injected verdict differs from fault-free baseline:\n--- baseline ---\n%s--- injected ---\n%s", baseline, got)
		}
		return "match", nil
	case errors.Is(err, guard.ErrLimit):
		return "limit", nil
	case errors.Is(err, wire.ErrLost):
		return "lost", nil
	default:
		return "", fmt.Errorf("INVARIANT VIOLATION: untyped error (want a verdict, a guard limit, or a wire loss): %v", err)
	}
}

// soakSpec is the job shape every soak case runs: a materialized
// safety check small enough to finish in milliseconds but real enough
// to cross every injection seam (snapshot appends, spill grows, packed
// scans, the guard).
func soakSpec(tmName string, workers int) job.Spec {
	return job.Spec{
		Kind: job.KindSafety, TM: tmName, Prop: "op", Engine: "materialized",
		Threads: 2, Vars: 2, Workers: workers, MaxStates: soakBudget,
	}
}

func baselineKey(tmName string, workers int) string {
	return fmt.Sprintf("%s/w%d", tmName, workers)
}

// normalize renders res with the legitimately run-dependent fields
// (wall clocks, frontier peaks, resume seeds, limit payloads) zeroed,
// yielding the byte string two equivalent runs must share.
func normalize(res *job.Result) []byte {
	r := *res
	r.Checks = append([]job.Check(nil), res.Checks...)
	for i := range r.Checks {
		c := &r.Checks[i]
		c.ElapsedNS, c.BuildTMNS, c.BuildSpecNS = 0, 0, 0
		c.FrontierPeak = 0
		c.Resumed = 0
		c.Limit = nil
	}
	var buf bytes.Buffer
	r.Render(&buf)
	return buf.Bytes()
}
