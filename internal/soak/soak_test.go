package soak

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestSoakInvariantSmallCampaign runs a short real campaign — the same
// code path as `tmcheck chaos-soak` — and asserts the invariant holds
// and the report accounts for every case. CI's chaos smoke runs the
// bigger sweep; this keeps `go test ./...` honest on its own.
func TestSoakInvariantSmallCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("soak campaign in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var out bytes.Buffer
	err := Run(ctx, Config{Seeds: 4, First: 1, Dir: t.TempDir(), Out: &out})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	report := out.String()
	if !strings.Contains(report, "4 seed(s) ok") || !strings.Contains(report, "0 violations") {
		t.Fatalf("report does not attest the invariant:\n%s", report)
	}
}

// TestSoakSeedZeroDefaults pins the config defaults: First 0 maps to
// seed 1 (seed 0 derives the degenerate all-unarmed plan).
func TestSoakSeedZeroDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak campaign in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var out bytes.Buffer
	if err := Run(ctx, Config{Seeds: 1, Dir: t.TempDir(), NoRemote: true, Out: &out}); err != nil {
		t.Fatalf("soak with defaults: %v", err)
	}
	if !strings.Contains(out.String(), "1 seed(s) ok") {
		t.Fatalf("unexpected report:\n%s", out.String())
	}
}
