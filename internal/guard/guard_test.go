package guard

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestLimitErrorMessagesNameTheFlag(t *testing.T) {
	cases := []struct {
		err  *LimitError
		want []string
	}{
		{&LimitError{Kind: KindStates, Budget: 50000, Visited: 50001},
			[]string{"state budget exhausted at 50001 states", "-maxstates 100000"}},
		{&LimitError{Kind: KindTime, Elapsed: 1500 * time.Millisecond},
			[]string{"wall-clock limit", "-timeout"}},
		{&LimitError{Kind: KindMemory, MaxMemBytes: 1 << 30, HeapBytes: 3 << 29},
			[]string{"memory limit", "-maxmem", "1.5GiB", "1.0GiB"}},
		{&LimitError{Kind: KindCancelled, Elapsed: time.Second}, []string{"cancelled"}},
		{&LimitError{Kind: KindPanic, Value: "boom"}, []string{"panic", "boom"}},
	}
	for _, c := range cases {
		msg := c.err.Error()
		for _, want := range c.want {
			if !strings.Contains(msg, want) {
				t.Errorf("%v message %q missing %q", c.err.Kind, msg, want)
			}
		}
	}
}

func TestLimitErrorIs(t *testing.T) {
	cases := []struct {
		kind     Kind
		sentinel error
		also     error
	}{
		{KindStates, ErrStates, nil},
		{KindTime, ErrTimeout, context.DeadlineExceeded},
		{KindMemory, ErrMemory, nil},
		{KindCancelled, ErrCancelled, context.Canceled},
		{KindPanic, ErrPanic, nil},
	}
	for _, c := range cases {
		err := error(&LimitError{Kind: c.kind})
		if !errors.Is(err, ErrLimit) {
			t.Errorf("%v does not match ErrLimit", c.kind)
		}
		if !errors.Is(err, c.sentinel) {
			t.Errorf("%v does not match its sentinel", c.kind)
		}
		if c.also != nil && !errors.Is(err, c.also) {
			t.Errorf("%v does not match %v", c.kind, c.also)
		}
		if c.kind != KindStates && errors.Is(err, ErrStates) {
			t.Errorf("%v wrongly matches ErrStates", c.kind)
		}
	}
}

func TestGuardStatesBudget(t *testing.T) {
	g := New(nil, 10, 0)
	if err := g.Check(10); err != nil {
		t.Fatalf("Check(10) under budget 10: %v", err)
	}
	err := g.Check(11)
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != KindStates || le.Budget != 10 || le.Visited != 11 {
		t.Fatalf("Check(11) = %v, want states limit {10, 11}", err)
	}
}

func TestGuardCancellationAndDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, 0, 0)
	if err := g.Check(1); err != nil {
		t.Fatalf("pre-cancel Check: %v", err)
	}
	cancel()
	if err := g.Check(2); !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Check = %v, want cancelled", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if err := New(dctx, 0, 0).Check(1); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expired-deadline Check = %v, want timeout", err)
	}

	// Cancellation wins over a simultaneously blown budget.
	g2 := New(ctx, 1, 0)
	var le *LimitError
	if err := g2.Check(5); !errors.As(err, &le) || le.Kind != KindCancelled {
		t.Fatalf("cancelled+blown Check = %v, want cancelled first", err)
	}
}

func TestGuardMemoryWatchdog(t *testing.T) {
	// A 1-byte cap trips on the first sample; an absurdly large cap
	// never does.
	if err := New(nil, 0, 1).Check(1); !errors.Is(err, ErrMemory) {
		t.Fatalf("1-byte cap did not trip: Check = %v", err)
	}
	if err := New(nil, 0, 1<<62).Check(1); err != nil {
		t.Fatalf("huge cap tripped: %v", err)
	}
}

func TestNextMemCheckSchedule(t *testing.T) {
	// The first sample (no rate observed yet) starts at the floor.
	if got := nextMemCheck(memCheckMax, time.Millisecond, 0, 0, 1<<30, true); got != memCheckMin {
		t.Errorf("first interval = %v, want %v", got, memCheckMin)
	}
	// Fast growth near the cap pins the interval to the floor.
	if got := nextMemCheck(memCheckMax, time.Millisecond, 900<<20, 1000<<20, 1024<<20, false); got != memCheckMin {
		t.Errorf("fast growth near cap = %v, want %v", got, memCheckMin)
	}
	// Slow growth far from the cap rides the ceiling.
	if got := nextMemCheck(memCheckMin, 50*time.Millisecond, 10<<20, 10<<20+1024, 4096<<20, false); got != memCheckMax {
		t.Errorf("slow growth far from cap = %v, want %v", got, memCheckMax)
	}
	// A flat or shrinking heap backs off geometrically.
	if got := nextMemCheck(memCheckMin, time.Millisecond, 100<<20, 90<<20, 1<<30, false); got != 2*memCheckMin {
		t.Errorf("shrinking heap = %v, want %v", got, 2*memCheckMin)
	}
	// Steady growth schedules for a quarter of the headroom:
	// 100MiB grown in 10ms with 400MiB headroom left → 10ms.
	if got, want := nextMemCheck(memCheckMin, 10*time.Millisecond, 0, 100<<20, 500<<20, false), 10*time.Millisecond; got != want {
		t.Errorf("steady growth = %v, want %v", got, want)
	}
}

func TestGuardMemoryWatchdogBoundedOvershoot(t *testing.T) {
	// Regression: the watchdog used to sample at a fixed 50ms cadence,
	// so a tight allocation loop could retain hundreds of MiB past
	// -maxmem between two samples. The adaptive interval must keep the
	// trip within a modest margin of the cap; the slack is generous to
	// absorb CI scheduling jitter.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const headroom = 64 << 20
	capBytes := ms.HeapAlloc + headroom
	g := New(nil, 0, capBytes)

	var le *LimitError
	retained := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		chunk := make([]byte, 1<<20)
		chunk[0] = byte(i) // touch so the page is really committed
		retained = append(retained, chunk)
		if err := g.Check(i); err != nil {
			if !errors.As(err, &le) || le.Kind != KindMemory {
				t.Fatalf("Check = %v, want a memory limit", err)
			}
			break
		}
	}
	runtime.KeepAlive(retained)
	if le == nil {
		t.Fatal("retained 1GiB past the cap without tripping")
	}
	const slack = 48 << 20
	if le.HeapBytes > capBytes+slack {
		t.Fatalf("watchdog overshoot: tripped at heap %s, cap %s + %s slack",
			FormatBytes(le.HeapBytes), FormatBytes(capBytes), FormatBytes(slack))
	}
}

func TestGuardNilAndActive(t *testing.T) {
	var g *Guard
	if g.Active() || g.Check(1<<30) != nil || g.MaxStates() != 0 {
		t.Error("nil guard must be inert")
	}
	if New(nil, 0, 0).Active() {
		t.Error("limitless guard reports Active")
	}
	if !New(nil, 1, 0).Active() || !New(nil, 0, 1).Active() {
		t.Error("limited guard reports inactive")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !New(ctx, 0, 0).Active() {
		t.Error("cancellable guard reports inactive")
	}
}

func TestCapture(t *testing.T) {
	if err := Capture(func() error { return nil }); err != nil {
		t.Fatalf("clean Capture: %v", err)
	}
	sentinel := errors.New("plain")
	if err := Capture(func() error { return sentinel }); err != sentinel {
		t.Fatalf("Capture did not pass the error through: %v", err)
	}
	err := Capture(func() error { panic("kaboom") })
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != KindPanic || le.Value != "kaboom" || len(le.Stack) == 0 {
		t.Fatalf("Capture(panic) = %v, want panic limit with stack", err)
	}
	// An already-isolated LimitError re-panicked through an unbudgeted
	// wrapper passes through unwrapped.
	inner := &LimitError{Kind: KindPanic, Value: "orig"}
	if err := Capture(func() error { panic(inner) }); err != error(inner) {
		t.Fatalf("Capture(re-panic) = %v, want the original", err)
	}
}

func TestParseAndFormatBytes(t *testing.T) {
	good := map[string]uint64{
		"1024": 1024, "64k": 64 << 10, "64K": 64 << 10, "512MiB": 512 << 20,
		"2g": 2 << 30, "2GB": 2 << 30, "1T": 1 << 40, "7b": 7,
	}
	for in, want := range good {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "0", "-1", "x", "12q", "k", "1.5G"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) should fail", bad)
		}
	}
	if got := FormatBytes(1536 << 20); got != "1.5GiB" {
		t.Errorf("FormatBytes = %q", got)
	}
}
