// Package guard is the resource-governance layer of the checker: one
// vocabulary for every way a check can stop before its fixpoint, and
// one object — the Guard — that the engines consult at the same points
// where they already check the state budget.
//
// A stopped check reports a *LimitError whose Kind says what tripped:
// the state budget (states), a -timeout deadline (wall-clock), the
// -maxmem heap watchdog (memory), Ctrl-C (cancelled), or a panic in
// user-supplied TM code isolated by Capture or the parbfs worker pool
// (panic). All kinds are graceful refusals, not crashes: the process
// keeps running, partial results stay valid, and the keep-going table
// drivers render the row as LIMIT(kind) and move on.
//
// Determinism: the sequential engines consult the guard once per state
// and the parallel engines once per BFS level barrier — exactly where
// the state budget has always been checked — so a cancelled or
// timed-out scan still observes a prefix of the canonical barrier
// sequence, identical across worker counts up to the stop point.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"tmcheck/internal/chaos"
	"tmcheck/internal/obs"
)

// Kind classifies what stopped a check.
type Kind uint8

const (
	// KindStates is the state budget (-maxstates). It is the zero value
	// so that legacy literals constructing the space.BudgetError alias
	// without a Kind keep meaning "state budget exceeded".
	KindStates Kind = iota
	// KindTime is a wall-clock deadline (-timeout).
	KindTime
	// KindMemory is the heap watchdog (-maxmem).
	KindMemory
	// KindCancelled is an external cancellation (Ctrl-C / SIGTERM).
	KindCancelled
	// KindPanic is a panic in user-supplied code, isolated into an
	// error by Capture or by the parbfs worker pool.
	KindPanic
)

// String names the kind for reports and LimitError messages.
func (k Kind) String() string {
	switch k {
	case KindStates:
		return "states"
	case KindTime:
		return "wall-clock"
	case KindMemory:
		return "memory"
	case KindCancelled:
		return "cancelled"
	case KindPanic:
		return "panic"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Label is the short form used in LIMIT(...) table cells and metric
// keys.
func (k Kind) Label() string {
	switch k {
	case KindStates:
		return "states"
	case KindTime:
		return "time"
	case KindMemory:
		return "mem"
	case KindCancelled:
		return "cancelled"
	case KindPanic:
		return "panic"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Sentinels for errors.Is: ErrLimit matches every *LimitError, the
// others match one kind each. A KindTime error additionally matches
// context.DeadlineExceeded and a KindCancelled error matches
// context.Canceled, so callers holding only a context see the class
// they expect.
var (
	ErrLimit     = errors.New("guard: resource limit reached")
	ErrStates    = errors.New("guard: state budget exceeded")
	ErrTimeout   = errors.New("guard: wall-clock limit exceeded")
	ErrMemory    = errors.New("guard: memory limit exceeded")
	ErrCancelled = errors.New("guard: cancelled")
	ErrPanic     = errors.New("guard: panic isolated")
)

// LimitError reports that a check stopped at a resource limit. It is a
// graceful refusal, not a crash: the caller can retry with a larger
// limit, a lazier engine, or a smaller instance.
type LimitError struct {
	// Kind says which limit tripped; the zero value is KindStates.
	Kind Kind
	// Budget is the configured state cap (KindStates).
	Budget int
	// Visited is the number of states constructed or visited when the
	// limit tripped. With parallel workers the check sits at level
	// barriers, so Visited may exceed Budget by up to one BFS level;
	// the sequential engines trip exactly.
	Visited int
	// Elapsed is the wall-clock spent when the limit tripped
	// (KindTime and KindCancelled).
	Elapsed time.Duration
	// MaxMemBytes and HeapBytes are the configured cap and the sampled
	// heap when the watchdog tripped (KindMemory).
	MaxMemBytes, HeapBytes uint64
	// Value is the recovered panic value and Stack the goroutine stack
	// at the recovery point (KindPanic).
	Value any
	Stack []byte
	// Snapshot, when non-empty, is the checkpoint file holding the work
	// done up to the stop barrier; the run resumes from it with the
	// same -checkpoint flag. The job layer annotates it — the guard
	// itself never knows the path.
	Snapshot string
}

// Error names the flag that raises the limit, so the CLI needs no
// extra hinting layer. The message is a deterministic function of the
// fields — the wire layer depends on that to reconstruct errors
// exactly.
func (e *LimitError) Error() string {
	var msg string
	switch e.Kind {
	case KindStates:
		if e.Budget > 0 {
			msg = fmt.Sprintf("state budget exhausted at %d states; rerun with -maxstates %d",
				e.Visited, 2*e.Budget)
		} else {
			msg = fmt.Sprintf("state budget exhausted at %d states", e.Visited)
		}
	case KindTime:
		msg = fmt.Sprintf("wall-clock limit reached after %v; rerun with a larger -timeout",
			e.Elapsed.Round(time.Millisecond))
	case KindMemory:
		msg = fmt.Sprintf("memory limit reached: heap %s over -maxmem %s; rerun with a larger -maxmem or a smaller instance (-n/-k)",
			FormatBytes(e.HeapBytes), FormatBytes(e.MaxMemBytes))
	case KindCancelled:
		msg = fmt.Sprintf("check cancelled after %v", e.Elapsed.Round(time.Millisecond))
	case KindPanic:
		msg = fmt.Sprintf("panic isolated during check: %v", e.Value)
	default:
		msg = fmt.Sprintf("guard: limit %v reached", e.Kind)
	}
	if e.Snapshot != "" {
		msg += fmt.Sprintf("; progress saved to snapshot %s", e.Snapshot)
	}
	return msg
}

// Is makes errors.Is match ErrLimit, the kind's sentinel, and — for
// deadlines and cancellation — the standard context errors.
func (e *LimitError) Is(target error) bool {
	if target == ErrLimit {
		return true
	}
	switch e.Kind {
	case KindStates:
		return target == ErrStates
	case KindTime:
		return target == ErrTimeout || target == context.DeadlineExceeded
	case KindMemory:
		return target == ErrMemory
	case KindCancelled:
		return target == ErrCancelled || target == context.Canceled
	case KindPanic:
		return target == ErrPanic
	}
	return false
}

// The ReadMemStats watchdog samples on an adaptive interval: after
// each sample the next one is scheduled for when roughly a quarter of
// the remaining headroom would be consumed at the observed allocation
// rate, clamped to [memCheckMin, memCheckMax]. A scan allocating fast
// near the cap is sampled every few hundred microseconds (bounding the
// overshoot past -maxmem), while an idle or shrinking heap backs off
// to the old fixed 50ms cadence and pays nothing extra per barrier.
const (
	memCheckMin = 500 * time.Microsecond
	memCheckMax = 50 * time.Millisecond
)

// Guard bundles the limits one check runs under: a context (deadline
// and cancellation), a state budget, and a heap cap. The zero of every
// field means "no limit of that kind"; a nil *Guard never trips.
//
// A Guard is consulted from one goroutine at a time (the engine spine
// that drives the scan); per-check guards must not be shared across
// concurrently running checks.
type Guard struct {
	ctx       context.Context
	start     time.Time
	maxStates int
	maxMem    uint64
	lastMem   time.Time
	lastHeap  uint64
	memEvery  time.Duration
}

// New returns a guard over ctx (nil means context.Background()) with
// the given state budget and heap cap; zero disables either limit.
func New(ctx context.Context, maxStates int, maxMem uint64) *Guard {
	if ctx == nil {
		ctx = context.Background()
	}
	if maxStates < 0 {
		maxStates = 0
	}
	return &Guard{ctx: ctx, start: time.Now(), maxStates: maxStates, maxMem: maxMem}
}

// Process returns a guard over ctx carrying the process-wide limits
// installed by the CLI flags: the -maxstates budget passed by the
// caller and the -maxmem heap cap of this package.
func Process(ctx context.Context, maxStates int) *Guard {
	return New(ctx, maxStates, MaxMem())
}

// MaxStates returns the guard's state budget (0 = unlimited).
func (g *Guard) MaxStates() int {
	if g == nil {
		return 0
	}
	return g.maxStates
}

// Context returns the guard's context (context.Background() for a nil
// guard).
func (g *Guard) Context() context.Context {
	if g == nil || g.ctx == nil {
		return context.Background()
	}
	return g.ctx
}

// WithStates returns a guard sharing this guard's context, start time
// and heap cap but with its own state budget — the derived budgets of
// the staged materialized pipeline.
func (g *Guard) WithStates(maxStates int) *Guard {
	if maxStates < 0 {
		maxStates = 0
	}
	if g == nil {
		return &Guard{ctx: context.Background(), start: time.Now(), maxStates: maxStates}
	}
	return &Guard{ctx: g.ctx, start: g.start, maxStates: maxStates, maxMem: g.maxMem}
}

// Active reports whether the guard can ever trip; engines hoist this
// out of their hot loops so an unlimited scan pays nothing per state.
func (g *Guard) Active() bool {
	return g != nil && (g.maxStates > 0 || g.maxMem > 0 || g.ctx.Done() != nil)
}

// Check is the single consultation point of the engines: called with
// the number of states constructed so far, it returns a *LimitError
// when the context is done (KindCancelled or KindTime), the state
// budget is exceeded, or the sampled heap is over the cap — nil
// otherwise. Cancellation is checked first so a Ctrl-C is reported as
// such even when the budget is also blown.
func (g *Guard) Check(states int) error {
	if g == nil {
		return nil
	}
	if chaos.Fire(chaos.SiteGuardMem) {
		// A planted watchdog trip: sample the real heap so the message
		// stays truthful, then report it as over-cap. The soak runner
		// asserts this surfaces as a typed KindMemory limit.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return trip(&LimitError{
			Kind: KindMemory, Visited: states, Elapsed: time.Since(g.start),
			MaxMemBytes: ms.HeapAlloc, HeapBytes: ms.HeapAlloc,
		})
	}
	if g.ctx.Done() != nil {
		if err := g.ctx.Err(); err != nil {
			kind := KindCancelled
			if errors.Is(err, context.DeadlineExceeded) {
				kind = KindTime
			}
			return trip(&LimitError{Kind: kind, Visited: states, Elapsed: time.Since(g.start)})
		}
	}
	if g.maxStates > 0 && states > g.maxStates {
		return trip(&LimitError{Kind: KindStates, Budget: g.maxStates, Visited: states})
	}
	if g.maxMem > 0 {
		if g.memEvery == 0 {
			g.memEvery = memCheckMin
		}
		if now := time.Now(); g.lastMem.IsZero() || now.Sub(g.lastMem) >= g.memEvery {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			// The watchdog is the one place that already pays for
			// ReadMemStats, so it also publishes the heap vitals the
			// after-the-run report used to silently discard.
			obs.Inc("guard.mem.samples", 1)
			obs.MaxGauge("guard.heap.max_bytes", int64(ms.HeapAlloc))
			if ms.HeapAlloc > g.maxMem {
				return trip(&LimitError{
					Kind: KindMemory, Visited: states, Elapsed: time.Since(g.start),
					MaxMemBytes: g.maxMem, HeapBytes: ms.HeapAlloc,
				})
			}
			g.memEvery = nextMemCheck(g.memEvery, now.Sub(g.lastMem), g.lastHeap, ms.HeapAlloc, g.maxMem, g.lastMem.IsZero())
			g.lastMem, g.lastHeap = now, ms.HeapAlloc
		}
	}
	return nil
}

// nextMemCheck schedules the watchdog's next heap sample from the
// growth observed over the last interval: the time for the current
// allocation rate to consume a quarter of the remaining headroom,
// clamped to [memCheckMin, memCheckMax]. A flat or shrinking heap
// doubles the interval instead (up to the max), so steady-state scans
// converge back to the cheap cadence after an allocation burst.
func nextMemCheck(cur, dt time.Duration, prevHeap, heap, cap uint64, first bool) time.Duration {
	if first || dt <= 0 {
		return memCheckMin
	}
	if heap <= prevHeap {
		if cur *= 2; cur > memCheckMax {
			cur = memCheckMax
		}
		return cur
	}
	if heap >= cap {
		return memCheckMin
	}
	next := time.Duration(float64(dt) * float64(cap-heap) / (4 * float64(heap-prevHeap)))
	if next < memCheckMin {
		return memCheckMin
	}
	if next > memCheckMax {
		return memCheckMax
	}
	return next
}

// trip publishes the limit on the telemetry bus (an EvLimitHit, or an
// EvPanicRecovered for isolated panics) and returns it, so every way a
// check can stop shows up in the live event stream and the flight
// recorder without per-call-site wiring.
func trip(le *LimitError) *LimitError {
	if obs.EventsEnabled() {
		kind := obs.EvLimitHit
		if le.Kind == KindPanic {
			kind = obs.EvPanicRecovered
		}
		obs.Emit(obs.Event{
			Kind:      kind,
			States:    int64(le.Visited),
			HeapBytes: le.HeapBytes,
			Detail:    le.Kind.Label() + ": " + le.Error(),
		})
	}
	return le
}

// Capture runs f and converts a panic into a *LimitError{Kind:
// KindPanic} carrying the recovered value and stack, so user-supplied
// TM code that crashes degrades into an error instead of killing the
// process. A recovered value that already is a *LimitError (a parbfs
// worker recovery re-panicked through an unbudgeted wrapper) passes
// through unwrapped.
func Capture(f func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			if le, ok := v.(*LimitError); ok {
				err = le
				return
			}
			err = trip(&LimitError{Kind: KindPanic, Value: v, Stack: debug.Stack()})
		}
	}()
	return f()
}

// maxMem is the process-wide heap cap in bytes; 0 means unlimited.
var maxMem atomic.Uint64

// MaxMem returns the process-wide heap cap installed by SetMaxMem (the
// -maxmem flag of cmd/tmcheck), or 0 for unlimited.
func MaxMem() uint64 { return maxMem.Load() }

// SetMaxMem installs the process-wide heap cap in bytes; 0 resets to
// unlimited.
func SetMaxMem(bytes uint64) { maxMem.Store(bytes) }

// FormatBytes renders a byte count with a binary suffix, e.g. "512MiB".
func FormatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// ParseBytes parses a -maxmem value: a plain integer is bytes, and the
// suffixes K/KB/KiB, M/MB/MiB, G/GB/GiB, T/TB/TiB (case-insensitive)
// scale by powers of 1024.
func ParseBytes(s string) (uint64, error) {
	orig := s
	mult := uint64(1)
	lower := func(b byte) byte {
		if 'A' <= b && b <= 'Z' {
			return b + 'a' - 'A'
		}
		return b
	}
	// Strip an optional b/ib tail, then the scale letter.
	n := len(s)
	if n > 1 && lower(s[n-1]) == 'b' {
		s = s[:n-1]
		n--
		if n > 1 && lower(s[n-1]) == 'i' {
			s = s[:n-1]
			n--
		}
	}
	if n > 0 {
		switch lower(s[n-1]) {
		case 'k':
			mult, s = 1<<10, s[:n-1]
		case 'm':
			mult, s = 1<<20, s[:n-1]
		case 'g':
			mult, s = 1<<30, s[:n-1]
		case 't':
			mult, s = 1<<40, s[:n-1]
		}
	}
	if s == "" {
		return 0, fmt.Errorf("guard: invalid size %q", orig)
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("guard: invalid size %q", orig)
		}
		v = v*10 + uint64(s[i]-'0')
	}
	if v == 0 {
		return 0, fmt.Errorf("guard: size must be positive, got %q", orig)
	}
	return v * mult, nil
}
