package jobd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// JournalEntry is one record of the daemon's crash-recovery journal —
// a JSON line in <snap-dir>/jobs.journal. A "start" line is appended
// when a job is admitted, a matching "done" line when it resolves
// (result delivered, cancelled, or its client vanished). A start
// without a done is an orphan: the daemon died (or was SIGKILLed) with
// the job in flight. On restart the orphans are reported so an
// operator — or a reconnecting client with -resume — knows which
// snapshot prefixes hold recoverable progress.
type JournalEntry struct {
	// Event is "start" or "done".
	Event string `json:"event"`
	// ID names the job uniquely across daemon restarts
	// (<epoch-hex>.<seq>).
	ID string `json:"id"`
	// Kind is the Spec kind ("safety", "liveness", ...); start only.
	Kind string `json:"kind,omitempty"`
	// Checkpoint is the base name of the job's snapshot inside
	// -snap-dir ("" when the job was not checkpointing); start only.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Started is the admission wall clock (RFC 3339); start only.
	Started string `json:"started,omitempty"`
}

// journalName is the journal file's base name inside -snap-dir.
const journalName = "jobs.journal"

// journal is the daemon-side ledger of in-flight jobs. All methods are
// nil-safe no-ops, so a daemon without a -snap-dir carries a nil
// journal and pays nothing.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	epoch   int64
	seq     atomic.Uint64
	orphans map[string]JournalEntry // id → its start entry, prior lives only
}

// openJournal loads <dir>/jobs.journal, collects the orphans the
// previous daemon life left behind, compacts the file down to just
// those start lines, and reopens it for appending. Corrupt lines (a
// torn tail from the crash the journal exists to survive) are skipped,
// never fatal.
func openJournal(dir string) (*journal, []JournalEntry, error) {
	j := &journal{
		path:    filepath.Join(dir, journalName),
		epoch:   time.Now().UnixNano(),
		orphans: make(map[string]JournalEntry),
	}
	if data, err := os.ReadFile(j.path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		for sc.Scan() {
			var e JournalEntry
			if json.Unmarshal(sc.Bytes(), &e) != nil {
				continue // torn or corrupt line: skip
			}
			switch e.Event {
			case "start":
				j.orphans[e.ID] = e
			case "done":
				delete(j.orphans, e.ID)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	// Compact: rewrite only the surviving starts, atomically, so the
	// journal never grows without bound across restarts.
	var buf bytes.Buffer
	for _, e := range j.sortedOrphans() {
		b, _ := json.Marshal(e)
		buf.Write(b)
		buf.WriteByte('\n')
	}
	tmp := j.path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return nil, nil, err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j.f = f
	return j, j.sortedOrphans(), nil
}

// start journals a job admission and returns its id.
func (j *journal) start(kind, checkpoint string) string {
	if j == nil {
		return ""
	}
	id := fmt.Sprintf("%x.%d", j.epoch, j.seq.Add(1))
	j.append(JournalEntry{
		Event: "start", ID: id, Kind: kind, Checkpoint: checkpoint,
		Started: time.Now().UTC().Format(time.RFC3339),
	})
	return id
}

// done journals a job's resolution.
func (j *journal) done(id string) {
	if j == nil || id == "" {
		return
	}
	j.append(JournalEntry{Event: "done", ID: id})
}

// adopt looks for an orphan whose checkpoint matches resumeBase — a
// reconnecting client picking its interrupted job back up — and, when
// found, retires it (journals its done) and returns it.
func (j *journal) adopt(resumeBase string) (JournalEntry, bool) {
	if j == nil || resumeBase == "" {
		return JournalEntry{}, false
	}
	j.mu.Lock()
	for id, e := range j.orphans {
		if e.Checkpoint == resumeBase {
			delete(j.orphans, id)
			j.mu.Unlock()
			j.done(id)
			return e, true
		}
	}
	j.mu.Unlock()
	return JournalEntry{}, false
}

// append writes one entry, synced — the journal is tiny and written
// once per job lifecycle edge, so durability is worth the fsync.
func (j *journal) append(e JournalEntry) {
	b, _ := json.Marshal(e)
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	if _, err := j.f.Write(b); err != nil {
		return // journal is advisory: never fail a job over it
	}
	_ = j.f.Sync()
}

// sortedOrphans snapshots the un-adopted orphans in id order.
func (j *journal) sortedOrphans() []JournalEntry {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JournalEntry, 0, len(j.orphans))
	for _, e := range j.orphans {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// close releases the journal file.
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}
