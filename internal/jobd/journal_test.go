package jobd

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tmcheck/internal/job"
)

// TestJournalLifecycle pins the journal unit contract: starts without
// a matching done survive a reopen as orphans, dones are compacted
// away, and adoption consumes an orphan exactly once.
func TestJournalLifecycle(t *testing.T) {
	dir := t.TempDir()
	j, orphans, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 0 {
		t.Fatalf("fresh journal reports %d orphan(s): %v", len(orphans), orphans)
	}
	idA := j.start("safety", "a.snap")
	idB := j.start("safety", "")
	if idA == idB || idA == "" {
		t.Fatalf("ids not unique: %q vs %q", idA, idB)
	}
	j.done(idB)
	j.close()

	// A "crashed" daemon left idA in flight. Reopen sees exactly it.
	j2, orphans, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 1 || orphans[0].ID != idA || orphans[0].Checkpoint != "a.snap" {
		t.Fatalf("orphans after reopen = %+v, want just %s with a.snap", orphans, idA)
	}
	// Compaction rewrote the file down to live entries only.
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 1 {
		t.Fatalf("compacted journal has %d line(s), want 1:\n%s", got, data)
	}
	if adopted, ok := j2.adopt("a.snap"); !ok || adopted.ID != idA {
		t.Fatalf("adopt(a.snap) = %+v, %v; want %s, true", adopted, ok, idA)
	}
	if _, ok := j2.adopt("a.snap"); ok {
		t.Fatal("second adopt of the same snapshot succeeded")
	}
	j2.close()

	// Adoption recorded the done: a third open is clean.
	j3, orphans, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.close()
	if len(orphans) != 0 {
		t.Fatalf("orphans after adoption = %+v, want none", orphans)
	}
}

// TestJournalSkipsCorruptLines pins crash tolerance of the journal
// itself: a torn or garbage line (the daemon died mid-append) is
// skipped, not fatal, and intact entries around it survive.
func TestJournalSkipsCorruptLines(t *testing.T) {
	dir := t.TempDir()
	raw := `{"event":"start","id":"1.1","kind":"safety","checkpoint":"x.snap"}
{"event":"start","id":"1.2","kind":"table2","checkpoi` + "\n" // torn tail
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	j, orphans, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if len(orphans) != 1 || orphans[0].ID != "1.1" {
		t.Fatalf("orphans = %+v, want just the intact 1.1", orphans)
	}
}

// TestServerReportsAndReadoptsOrphans is the end-to-end recovery
// story: a daemon starting over a journal with an in-flight entry
// reports the orphan and how to resume it, and a client resubmitting
// with -resume against that snapshot re-adopts it.
func TestServerReportsAndReadoptsOrphans(t *testing.T) {
	dir := t.TempDir()
	seed := `{"event":"start","id":"dead.1","kind":"safety","checkpoint":"ck.snap","started":"2026-08-08T00:00:00Z"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	srv, addr := startServer(t, Config{Jobs: 1, SnapDir: dir, Logf: logf})

	if got := srv.Orphans(); len(got) != 1 || got[0].ID != "dead.1" {
		t.Fatalf("Orphans() = %+v, want the seeded dead.1", got)
	}
	mu.Lock()
	joined := strings.Join(lines, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "dead.1") || !strings.Contains(joined, "-resume ck.snap") {
		t.Fatalf("startup log does not report the orphan with resume advice:\n%s", joined)
	}

	// The reconnecting client resubmits with Resume = Checkpoint. The
	// snapshot file does not exist (the old daemon died before its first
	// append) — the job must still run fresh and adopt the orphan.
	c := dial(t, addr)
	res, err := c.Run(context.Background(), job.Spec{
		Kind: job.KindSafety, TM: "seq", Prop: "op", Threads: 2, Vars: 1,
		Engine: "materialized", Checkpoint: "ck.snap", Resume: "ck.snap",
	}, nil)
	if err != nil {
		t.Fatalf("resubmit with resume: %v", err)
	}
	if len(res.Checks) == 0 || !res.Checks[0].Holds {
		t.Fatalf("unexpected result: %+v", res)
	}
	if got := srv.Orphans(); len(got) != 0 {
		t.Fatalf("Orphans() after re-adoption = %+v, want none", got)
	}
	mu.Lock()
	joined = strings.Join(lines, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "re-adopts orphaned job dead.1") {
		t.Fatalf("log does not record the re-adoption:\n%s", joined)
	}
}

// TestServerJournalRecordsCompletion pins the happy path: a job that
// runs to completion leaves no orphan for the next daemon.
func TestServerJournalRecordsCompletion(t *testing.T) {
	dir := t.TempDir()
	_, addr := startServer(t, Config{Jobs: 1, SnapDir: dir})
	c := dial(t, addr)
	if _, err := c.Run(context.Background(), job.Spec{
		Kind: job.KindSafety, TM: "seq", Prop: "op", Threads: 2, Vars: 1,
		Engine: "materialized", Checkpoint: "done.snap",
	}, nil); err != nil {
		t.Fatal(err)
	}
	// A second daemon over the same snap dir must see a clean journal.
	srv2 := New(Config{Jobs: 1, SnapDir: dir})
	addr2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	_ = addr2
	if got := srv2.Orphans(); len(got) != 0 {
		t.Fatalf("second daemon sees orphans %+v after a clean completion", got)
	}
}
