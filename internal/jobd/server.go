// Package jobd is the tmcheckd daemon core: a TCP server that accepts
// wire-framed connections, runs submitted job Specs concurrently on a
// bounded pool, streams throttled progress frames off the telemetry
// bus, and supports per-request cancel, client disconnect, and
// graceful drain. It lives under internal/ so the daemon tests can
// drive a real server in-process; cmd/tmcheckd is a thin flag shell
// over it.
package jobd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"tmcheck/internal/guard"
	"tmcheck/internal/job"
	"tmcheck/internal/obs"
	"tmcheck/internal/snap"
	"tmcheck/internal/wire"
)

// Config shapes one Server.
type Config struct {
	// Jobs is the worker-pool size — how many jobs run concurrently;
	// <= 0 takes GOMAXPROCS. Admitted jobs beyond it queue for a slot.
	Jobs int
	// Workers, MaxStates, Timeout and MaxMem are defaults applied to a
	// Spec whose corresponding field is unset, so an operator can cap
	// what anonymous submissions may spend. Explicit Spec fields win.
	Workers   int
	MaxStates int
	Timeout   time.Duration
	MaxMem    uint64
	// ProgressEvery throttles the progress stream: at most one frame
	// per running request per interval; <= 0 takes 250ms.
	ProgressEvery time.Duration
	// Heartbeat is the interval of server→client liveness probes; <= 0
	// disables them.
	Heartbeat time.Duration
	// SnapDir is the directory snapshot files live in. A Spec naming a
	// checkpoint, resume or spill path is rewritten to this directory
	// (base name only — clients don't choose server paths); "" refuses
	// such Specs, so an operator must opt the daemon into disk writes.
	// With a SnapDir the daemon also keeps a crash-recovery journal
	// (jobs.journal) of in-flight jobs there.
	SnapDir string
	// SnapSync and SnapBatch set the checkpoint fsync policy
	// (-snap-sync) for every job this daemon runs; zero values keep
	// the durable per-record default.
	SnapSync  snap.SyncMode
	SnapBatch int
	// StrictPersist makes snapshot/spill I/O errors fail jobs
	// (-strict-persist) instead of degrading to unpersisted runs.
	StrictPersist bool
	// Logf receives one line per lifecycle event (accept, submit,
	// done, drain); nil discards.
	Logf func(format string, args ...any)
}

// Server is a running daemon. Create with New, start with Start, stop
// with Shutdown (graceful) or Close (hard).
type Server struct {
	cfg        Config
	ln         net.Listener
	baseCtx    context.Context
	baseCancel context.CancelFunc
	sem        chan struct{}
	jobWG      sync.WaitGroup
	connWG     sync.WaitGroup
	stopBus    func()
	journal    *journal

	mu       sync.Mutex
	draining bool
	closed   bool
	conns    map[*connState]struct{}
}

// connState is one client connection.
type connState struct {
	srv    *Server
	nc     net.Conn
	wc     *wire.Conn
	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	reqs map[uint64]*reqState
}

// reqState is one submitted job on a connection.
type reqState struct {
	cancel  context.CancelFunc
	running bool
	// lastProgressNS throttles the progress stream; only the bus
	// forwarding goroutine touches it.
	lastProgressNS int64
}

// New builds a stopped server.
func New(cfg Config) *Server {
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 250 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		sem:        make(chan struct{}, cfg.Jobs),
		conns:      make(map[*connState]struct{}),
	}
}

// Start listens on addr (e.g. "127.0.0.1:7078", ":0" for an ephemeral
// port) and begins accepting connections in the background. It returns
// the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	// With a snapshot directory, replay the crash-recovery journal:
	// jobs the previous daemon life never resolved are reported as
	// orphans, so their persisted snapshot prefixes are findable. A
	// journal failure degrades (the daemon runs unjournaled) — the
	// ledger is advisory, not load-bearing.
	if s.cfg.SnapDir != "" {
		j, orphans, err := openJournal(s.cfg.SnapDir)
		if err != nil {
			s.cfg.Logf("tmcheckd: journal disabled: %v", err)
		} else {
			s.journal = j
			for _, e := range orphans {
				if e.Checkpoint != "" {
					s.cfg.Logf("tmcheckd: journal: job %s (%s, started %s) was in flight when the previous daemon stopped; its snapshot %s holds the persisted prefix — resubmit with -resume %s to adopt it",
						e.ID, e.Kind, e.Started, e.Checkpoint, e.Checkpoint)
				} else {
					s.cfg.Logf("tmcheckd: journal: job %s (%s, started %s) was in flight when the previous daemon stopped and left no snapshot; it must be rerun from scratch",
						e.ID, e.Kind, e.Started)
				}
			}
		}
	}
	// One bus subscription fans progress out to every connection; jobs
	// run with NoPhases, but their engines still emit bus events.
	s.stopBus = job.Events(256, s.forward)
	s.connWG.Add(1)
	go s.acceptLoop()
	s.cfg.Logf("tmcheckd: listening on %s (%d job slot(s))", ln.Addr(), s.cfg.Jobs)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain or hard stop
		}
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		ctx, cancel := context.WithCancel(s.baseCtx)
		cs := &connState{
			srv: s, nc: nc, wc: wire.NewConn(nc),
			ctx: ctx, cancel: cancel,
			reqs: make(map[uint64]*reqState),
		}
		s.conns[cs] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go cs.serve()
	}
}

// Shutdown drains gracefully: stop accepting connections and submits,
// let running jobs finish and deliver their results, then close the
// connections. If ctx expires first, running jobs are cancelled (they
// stop at their next guard barrier and still report results) and the
// drain completes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.cfg.Logf("tmcheckd: draining")
	if s.ln != nil {
		s.ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Cancel running jobs at their next deterministic barrier and
		// wait for them to report.
		s.baseCancel()
		<-done
		err = ctx.Err()
	}
	s.finish()
	return err
}

// Close stops hard: cancel everything, drop connections, wait.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.baseCancel()
	s.finish()
	return nil
}

// finish closes remaining connections and waits for every goroutine.
func (s *Server) finish() {
	s.mu.Lock()
	s.closed = true
	conns := make([]*connState, 0, len(s.conns))
	for cs := range s.conns {
		conns = append(conns, cs)
	}
	s.mu.Unlock()
	for _, cs := range conns {
		cs.nc.Close()
	}
	s.connWG.Wait()
	s.jobWG.Wait()
	if s.stopBus != nil {
		s.stopBus()
		s.stopBus = nil
	}
	s.journal.close()
	s.cfg.Logf("tmcheckd: stopped")
}

// forward relays one bus event as throttled progress frames to every
// running request. The bus is process-global, so with concurrent jobs
// the stream is a fleet-level feed — Name identifies the check each
// frame came from.
func (s *Server) forward(e obs.Event) {
	switch e.Kind {
	case obs.EvProgress, obs.EvLevelDone:
	default:
		return
	}
	now := time.Now().UnixNano()
	every := int64(s.cfg.ProgressEvery)
	s.mu.Lock()
	conns := make([]*connState, 0, len(s.conns))
	for cs := range s.conns {
		conns = append(conns, cs)
	}
	s.mu.Unlock()
	for _, cs := range conns {
		cs.mu.Lock()
		ids := make([]uint64, 0, len(cs.reqs))
		for id, rq := range cs.reqs {
			if !rq.running || now-rq.lastProgressNS < every {
				continue
			}
			rq.lastProgressNS = now
			ids = append(ids, id)
		}
		cs.mu.Unlock()
		for _, id := range ids {
			// A write error means the connection is dying; its read
			// loop is about to clean up.
			_ = cs.wc.Write(id, wire.Progress{
				Name: e.Name, States: e.States, Frontier: e.Frontier,
				Level: e.Level, HeapBytes: e.HeapBytes, Detail: e.Detail,
			})
		}
	}
}

// serve is one connection's read loop. Closing the connection — client
// disconnect, drain, Close — cancels its context, which cancels every
// job it submitted at the jobs' next guard barriers.
func (cs *connState) serve() {
	s := cs.srv
	defer s.connWG.Done()
	defer func() {
		cs.cancel()
		cs.nc.Close()
		s.mu.Lock()
		delete(s.conns, cs)
		s.mu.Unlock()
	}()
	s.cfg.Logf("tmcheckd: %s connected", cs.nc.RemoteAddr())
	stopHB := cs.startHeartbeats()
	defer stopHB()
	for {
		reqID, m, err := cs.wc.Read()
		if err != nil {
			s.cfg.Logf("tmcheckd: %s gone: %v", cs.nc.RemoteAddr(), err)
			return
		}
		switch m := m.(type) {
		case wire.Submit:
			cs.submit(reqID, m.Spec)
		case wire.Cancel:
			cs.mu.Lock()
			rq := cs.reqs[reqID]
			cs.mu.Unlock()
			if rq != nil {
				rq.cancel()
			}
		case wire.HeartbeatAck:
			// Liveness confirmed; nothing to record — dead peers are
			// detected by failed writes.
		default:
			// Clients must not send server-only frames; drop them.
		}
	}
}

// startHeartbeats sends periodic liveness probes when configured.
func (cs *connState) startHeartbeats() (stop func()) {
	hb := cs.srv.cfg.Heartbeat
	if hb <= 0 {
		return func() {}
	}
	t := time.NewTicker(hb)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-t.C:
				if err := cs.wc.Write(0, wire.Heartbeat{SentNS: time.Now().UnixNano()}); err != nil {
					cs.nc.Close() // wakes the read loop
					return
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		t.Stop()
		close(done)
	}
}

// submit validates and admits one job, then runs it on the pool.
func (cs *connState) submit(reqID uint64, sp job.Spec) {
	s := cs.srv
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		_ = cs.wc.Write(reqID, wire.ErrorMsg{Msg: "tmcheckd: draining, not accepting jobs"})
		return
	}
	s.applyDefaults(&sp)
	sp.Normalize()
	if err := s.resolveSnapPaths(&sp); err != nil {
		_ = cs.wc.Write(reqID, wire.ErrorMsg{Msg: err.Error()})
		return
	}
	if err := sp.Validate(); err != nil {
		_ = cs.wc.Write(reqID, wire.ErrorMsg{Msg: err.Error()})
		return
	}
	cs.mu.Lock()
	if _, dup := cs.reqs[reqID]; dup {
		cs.mu.Unlock()
		_ = cs.wc.Write(reqID, wire.ErrorMsg{Msg: fmt.Sprintf("tmcheckd: request id %d already in use", reqID)})
		return
	}
	jobCtx, jobCancel := context.WithCancel(cs.ctx)
	rq := &reqState{cancel: jobCancel}
	cs.reqs[reqID] = rq
	active := len(cs.reqs)
	cs.mu.Unlock()
	_ = cs.wc.Write(reqID, wire.Accepted{Running: active})
	s.cfg.Logf("tmcheckd: %s req %d: %s accepted", cs.nc.RemoteAddr(), reqID, sp.Kind)

	// Journal the admission; a resume matching an orphaned job's
	// checkpoint re-adopts that job — the reconnect-and-continue path
	// a client takes after this daemon's predecessor died.
	if sp.Resume != "" {
		if e, ok := s.journal.adopt(filepath.Base(sp.Resume)); ok {
			s.cfg.Logf("tmcheckd: %s req %d: re-adopts orphaned job %s via snapshot %s",
				cs.nc.RemoteAddr(), reqID, e.ID, e.Checkpoint)
		}
	}
	ckptBase := ""
	if sp.Checkpoint != "" {
		ckptBase = filepath.Base(sp.Checkpoint)
	}
	jid := s.journal.start(sp.Kind.String(), ckptBase)

	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		defer jobCancel()
		defer s.journal.done(jid)
		defer func() {
			cs.mu.Lock()
			delete(cs.reqs, reqID)
			cs.mu.Unlock()
		}()
		// Wait for a pool slot; a cancel (client, disconnect, Close)
		// while queued resolves the job without running it.
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-jobCtx.Done():
			le := job.LimitFrom(&guard.LimitError{Kind: guard.KindCancelled})
			_ = cs.wc.Write(reqID, wire.ResultMsg{ErrMsg: le.Err().Error(), Limit: le})
			return
		}
		cs.mu.Lock()
		if r := cs.reqs[reqID]; r != nil {
			r.running = true
		}
		cs.mu.Unlock()
		start := time.Now()
		res, err := job.RunConfig(jobCtx, sp, job.Config{
			NoPhases: true,
			SnapSync: s.cfg.SnapSync, SnapBatch: s.cfg.SnapBatch,
			StrictPersist: s.cfg.StrictPersist,
		})
		msg := wire.ResultMsg{Result: res}
		if err != nil {
			msg.ErrMsg = err.Error()
			msg.Limit = job.LimitFrom(job.AsLimit(err))
		}
		s.cfg.Logf("tmcheckd: %s req %d: %s done in %v (err=%v)",
			cs.nc.RemoteAddr(), reqID, sp.Kind, time.Since(start).Round(time.Millisecond), err)
		if werr := cs.wc.Write(reqID, msg); werr != nil && !errors.Is(werr, net.ErrClosed) {
			s.cfg.Logf("tmcheckd: %s req %d: result write failed: %v", cs.nc.RemoteAddr(), reqID, werr)
		}
	}()
}

// Orphans reports the journaled jobs left in flight by previous daemon
// lives that no client has re-adopted yet (empty without a journal).
func (s *Server) Orphans() []JournalEntry {
	return s.journal.sortedOrphans()
}

// resolveSnapPaths confines a Spec's checkpoint/resume/spill paths to
// the configured snapshot directory: clients name snapshots, the
// operator decides where they live. Without a SnapDir such Specs are
// refused rather than silently run unsnapshotted.
func (s *Server) resolveSnapPaths(sp *job.Spec) error {
	if sp.Checkpoint == "" && sp.Resume == "" && sp.Spill == "" {
		return nil
	}
	if s.cfg.SnapDir == "" {
		return errors.New("tmcheckd: this server has no -snap-dir; checkpoint/resume/spill jobs are refused")
	}
	if sp.Checkpoint != "" {
		sp.Checkpoint = filepath.Join(s.cfg.SnapDir, filepath.Base(sp.Checkpoint))
	}
	if sp.Resume != "" {
		sp.Resume = filepath.Join(s.cfg.SnapDir, filepath.Base(sp.Resume))
	}
	if sp.Spill != "" {
		sp.Spill = s.cfg.SnapDir
	}
	return nil
}

// applyDefaults fills the server's budget defaults into unset Spec
// fields.
func (s *Server) applyDefaults(sp *job.Spec) {
	if sp.Workers <= 0 && s.cfg.Workers > 0 {
		sp.Workers = s.cfg.Workers
	}
	if sp.MaxStates <= 0 && s.cfg.MaxStates > 0 {
		sp.MaxStates = s.cfg.MaxStates
	}
	if sp.Timeout <= 0 && s.cfg.Timeout > 0 {
		sp.Timeout = s.cfg.Timeout
	}
	if sp.MaxMem == 0 && s.cfg.MaxMem > 0 {
		sp.MaxMem = s.cfg.MaxMem
	}
}
