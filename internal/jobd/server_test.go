package jobd

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tmcheck/internal/guard"
	"tmcheck/internal/job"
	"tmcheck/internal/wire"
)

// startServer brings up a daemon on an ephemeral port and tears it
// down with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.ProgressEvery == 0 {
		cfg.ProgressEvery = time.Millisecond
	}
	srv := New(cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

// dial connects a wire client and closes it with the test.
func dial(t *testing.T, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestConcurrentJobsWithProgress is the daemon's acceptance test: 8
// jobs running concurrently over one connection each receive streamed
// progress frames, and each stops with the typed cancelled limit when
// its client cancels. Every job is a (3,2) instance — far too large to
// finish here — that cancels itself once its first frame arrives, so
// the test cannot pass without per-job progress delivery and cannot
// run unbounded. (A quick (2,2) job can legitimately complete before
// its first frame reaches the client, so fast jobs prove nothing about
// streaming — see TestConcurrentVerdicts for plain completion.)
func TestConcurrentJobsWithProgress(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 8})
	c := dial(t, addr)

	const jobs = 8
	var wg sync.WaitGroup
	frames := make([]atomic.Int64, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var once sync.Once
			_, errs[i] = c.Run(ctx,
				job.Spec{Kind: job.KindSafety, TM: "dstm", Prop: "op", Threads: 3, Vars: 2},
				func(wire.Progress) {
					frames[i].Add(1)
					once.Do(cancel)
				})
		}(i)
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if !errors.Is(errs[i], guard.ErrCancelled) {
			t.Errorf("job %d: err = %v, want guard.ErrCancelled", i, errs[i])
		}
		if frames[i].Load() == 0 {
			t.Errorf("job %d: no progress frames", i)
		}
	}
}

// TestConcurrentVerdicts runs 8 jobs to completion over one connection
// and checks every verdict is the canonical one.
func TestConcurrentVerdicts(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 8})
	c := dial(t, addr)

	const jobs = 8
	var wg sync.WaitGroup
	errCh := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				res, err := c.Run(context.Background(),
					job.Spec{Kind: job.KindSafety, TM: "dstm", Prop: "op"}, nil)
				if err != nil {
					errCh <- fmt.Errorf("job %d: %w", i, err)
					return
				}
				if len(res.Checks) != 1 || !res.Checks[0].Holds || res.Checks[0].TMStates != 2864 {
					errCh <- fmt.Errorf("job %d: want holding dstm/op with 2864 states, got %+v", i, res.Checks)
				}
			} else {
				res, err := c.Run(context.Background(),
					job.Spec{Kind: job.KindLiveness, TM: "dstm", CM: "aggressive"}, nil)
				if err != nil {
					errCh <- fmt.Errorf("job %d: %w", i, err)
					return
				}
				if len(res.Checks) != 3 || !res.Checks[0].Holds || res.Checks[1].Holds {
					errCh <- fmt.Errorf("job %d: unexpected liveness checks %+v", i, res.Checks)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestConcurrentConnections runs jobs from several independent
// connections at once.
func TestConcurrentConnections(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 4})
	const conns = 4
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			res, err := c.Run(context.Background(),
				job.Spec{Kind: job.KindLiveness, TM: "dstm", CM: "aggressive"}, nil)
			if err != nil {
				errCh <- err
				return
			}
			if len(res.Checks) != 3 || !res.Checks[0].Holds || res.Checks[1].Holds {
				errCh <- fmt.Errorf("unexpected liveness result: %+v", res.Checks)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestCancelMidRun cancels a large running job after its first
// progress frame: the job stops at its next guard barrier and reports
// the typed cancelled limit.
func TestCancelMidRun(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 2})
	c := dial(t, addr)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	// The (3,2) instance is far too large to finish quickly; the first
	// progress frame proves the job is running, then we cancel.
	res, err := c.Run(ctx,
		job.Spec{Kind: job.KindSafety, TM: "dstm", Prop: "op", Threads: 3, Vars: 2},
		func(wire.Progress) { once.Do(cancel) })
	if !errors.Is(err, guard.ErrCancelled) {
		t.Fatalf("cancelled run: err = %v (res %+v), want guard.ErrCancelled", err, res)
	}
}

// TestCancelWhileQueued cancels a job still waiting for a pool slot:
// it resolves with the cancelled limit without ever running.
func TestCancelWhileQueued(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 1})
	c := dial(t, addr)

	blockCtx, unblock := context.WithCancel(context.Background())
	defer unblock()
	started := make(chan struct{})
	blockedDone := make(chan error, 1)
	go func() {
		var once sync.Once
		_, err := c.Run(blockCtx,
			job.Spec{Kind: job.KindSafety, TM: "dstm", Prop: "op", Threads: 3, Vars: 2},
			func(wire.Progress) { once.Do(func() { close(started) }) })
		blockedDone <- err
	}()
	<-started // the only slot is now busy

	queuedCtx, cancelQueued := context.WithCancel(context.Background())
	defer cancelQueued()
	queuedDone := make(chan error, 1)
	go func() {
		_, err := c.Run(queuedCtx, job.Spec{Kind: job.KindSafety, TM: "dstm"}, nil)
		queuedDone <- err
	}()
	// Let the submit reach the queue, then cancel it.
	time.Sleep(50 * time.Millisecond)
	cancelQueued()
	select {
	case err := <-queuedDone:
		if !errors.Is(err, guard.ErrCancelled) {
			t.Errorf("queued cancel: err = %v, want guard.ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued job did not resolve after cancel")
	}
	unblock()
	if err := <-blockedDone; !errors.Is(err, guard.ErrCancelled) {
		t.Errorf("blocking job: err = %v, want guard.ErrCancelled", err)
	}
}

// TestDisconnectCancelsJobs drops the client mid-run: the server must
// cancel the connection's jobs, and a follow-up Shutdown completes
// promptly because nothing is left running.
func TestDisconnectCancelsJobs(t *testing.T) {
	srv, addr := startServer(t, Config{Jobs: 2})
	c := dial(t, addr)

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var once sync.Once
		c.Run(context.Background(),
			job.Spec{Kind: job.KindSafety, TM: "dstm", Prop: "op", Threads: 3, Vars: 2},
			func(wire.Progress) { once.Do(func() { close(started) }) })
	}()
	<-started
	c.Close()
	<-done

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown after disconnect: %v", err)
	}
	// The job stops at its next guard barrier — promptly, not after
	// exploring the full (3,2) space.
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("shutdown took %v; disconnect did not cancel the job", elapsed)
	}
}

// TestGracefulDrain lets a running job run to its natural end and
// deliver its result while the server drains. The job carries a state
// budget on a (3,2) instance, so it is guaranteed to still be running
// when Shutdown begins (its first progress frame gates the drain) and
// to end deterministically at the budget — the delivered "result" is
// the same typed limit a local -maxstates run produces.
func TestGracefulDrain(t *testing.T) {
	srv, addr := startServer(t, Config{Jobs: 2})
	c := dial(t, addr)

	started := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		var once sync.Once
		_, err := c.Run(context.Background(),
			job.Spec{Kind: job.KindSafety, TM: "dstm", Prop: "op", Threads: 3, Vars: 2, MaxStates: 60000},
			func(wire.Progress) { once.Do(func() { close(started) }) })
		errCh <- err
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The drain must deliver the job's outcome, not sever it: the
	// budget limit arrives intact, cancellation never fired.
	if err := <-errCh; !errors.Is(err, guard.ErrStates) || errors.Is(err, guard.ErrCancelled) {
		t.Fatalf("drained job: err = %v, want the states limit", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

// TestDrainRejectsSubmits: once draining, new submissions are refused
// with a protocol error, and new connections are dropped.
func TestDrainRejectsSubmits(t *testing.T) {
	srv, addr := startServer(t, Config{Jobs: 2})
	c := dial(t, addr)
	// Prime the connection so it exists before the drain starts.
	if _, err := c.Run(context.Background(), job.Spec{Kind: job.KindLiveness, TM: "dstm", CM: "aggressive"}, nil); err != nil {
		t.Fatal(err)
	}

	go srv.Shutdown(context.Background())
	// The drain flag flips before the listener closes; poll until the
	// running connection sees it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := c.Run(context.Background(), job.Spec{Kind: job.KindSafety, TM: "dstm"}, nil)
		if err != nil && strings.Contains(err.Error(), "draining") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server still accepting jobs (last err: %v)", err)
		}
		if err != nil {
			// Connection already torn down — equally a refusal.
			break
		}
	}
}

// TestInvalidSpecRefused: a bad spec comes back as a protocol error
// carrying the same message local validation produces.
func TestInvalidSpecRefused(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 1})
	c := dial(t, addr)
	_, err := c.Run(context.Background(), job.Spec{Kind: job.KindSafety, TM: "nope"}, nil)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("invalid spec: err = %v, want unknown-algorithm error", err)
	}
	// The connection survives the refusal.
	res, err := c.Run(context.Background(), job.Spec{Kind: job.KindSafety, TM: "dstm"}, nil)
	if err != nil || len(res.Checks) != 1 {
		t.Errorf("connection unusable after refusal: %v %+v", err, res)
	}
}

// TestServerDefaultsApplied: the operator's MaxStates default caps
// specs that leave the budget unset, producing the same typed limit a
// local -maxstates run hits.
func TestServerDefaultsApplied(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 1, MaxStates: 100})
	c := dial(t, addr)
	_, err := c.Run(context.Background(), job.Spec{Kind: job.KindSafety, TM: "dstm"}, nil)
	if !errors.Is(err, guard.ErrStates) {
		t.Errorf("server default budget: err = %v, want guard.ErrStates", err)
	}
	if err == nil || !strings.Contains(err.Error(), "-maxstates") {
		t.Errorf("budget error %q does not name -maxstates", err)
	}
	// An explicit spec budget wins over the default.
	res, err := c.Run(context.Background(), job.Spec{Kind: job.KindSafety, TM: "dstm", MaxStates: 1 << 30}, nil)
	if err != nil || !res.Checks[0].Holds {
		t.Errorf("explicit budget should complete: %v %+v", err, res)
	}
}

// TestHeartbeats: with a fast heartbeat interval the client auto-acks
// and a job still completes over the chatty connection.
func TestHeartbeats(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 1, Heartbeat: 5 * time.Millisecond})
	c := dial(t, addr)
	res, err := c.Run(context.Background(), job.Spec{Kind: job.KindLiveness, TM: "dstm", CM: "aggressive"}, nil)
	if err != nil || len(res.Checks) != 3 {
		t.Fatalf("run under heartbeats: %v %+v", err, res)
	}
}

// TestSnapDirRefusedWithoutConfig: a daemon with no -snap-dir refuses
// checkpoint/resume/spill jobs instead of writing wherever the client
// says.
func TestSnapDirRefusedWithoutConfig(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 1})
	c := dial(t, addr)
	sp := job.Spec{Kind: job.KindSafety, TM: "tl2", Engine: "materialized", Checkpoint: "/etc/evil.snap"}
	_, err := c.Run(context.Background(), sp, nil)
	if err == nil || !strings.Contains(err.Error(), "no -snap-dir") {
		t.Errorf("checkpoint without -snap-dir: err = %v, want refusal", err)
	}
}

// TestSnapDirConfinesPaths: client-named snapshot paths are resolved
// into the operator's snapshot directory (base name only), and a
// checkpoint written through the daemon resumes through the daemon.
func TestSnapDirConfinesPaths(t *testing.T) {
	dir := t.TempDir()
	_, addr := startServer(t, Config{Jobs: 1, SnapDir: dir})
	c := dial(t, addr)

	sp := job.Spec{Kind: job.KindSafety, TM: "tl2", Engine: "materialized",
		Checkpoint: "/tmp/elsewhere/run.snap"}
	res, err := c.Run(context.Background(), sp, nil)
	if err != nil || !res.Checks[0].Holds {
		t.Fatalf("checkpointed job: %v %+v", err, res)
	}
	if _, err := os.Stat(filepath.Join(dir, "run.snap")); err != nil {
		t.Fatalf("snapshot not confined to the snap dir: %v", err)
	}

	rsp := job.Spec{Kind: job.KindSafety, TM: "tl2", Engine: "materialized",
		Resume: "../../run.snap"}
	rres, err := c.Run(context.Background(), rsp, nil)
	if err != nil || !rres.Checks[0].Holds {
		t.Fatalf("resumed job: %v %+v", err, rres)
	}
	if rres.Resumed() == 0 {
		t.Error("resume through the daemon seeded nothing")
	}
	if rres.Checks[0].TMStates != res.Checks[0].TMStates {
		t.Errorf("resumed TMStates = %d, want %d", rres.Checks[0].TMStates, res.Checks[0].TMStates)
	}
}
