package reduction

import (
	"fmt"
	"math/rand"

	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/explore"
)

// Language wraps a TM's language for membership queries. The explicit
// transition system of internal/explore satisfies it.
type Language interface {
	InLanguage(core.Word) bool
}

// Violation describes a sampled structural-property failure.
type Violation struct {
	Property string
	Word     core.Word // the witness in the language
	Derived  core.Word // the transformed word that fell out of the language
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s violated: %q in language but %q is not", v.Property, v.Word, v.Derived)
}

// Sampler checks structural properties of a TM by sampling words from its
// transition system and applying the reduction transformations.
type Sampler struct {
	TS  *explore.TS
	Rng *rand.Rand
	// Samples is the number of random words drawn per check.
	Samples int
	// MaxLen bounds the emitted length of sampled words.
	MaxLen int

	nfa *automata.NFA
}

// NewSampler returns a sampler with the given seed, drawing 200 words of
// up to 10 statements per check.
func NewSampler(ts *explore.TS, seed int64) *Sampler {
	return &Sampler{TS: ts, Rng: rand.New(rand.NewSource(seed)), Samples: 200, MaxLen: 10}
}

func (s *Sampler) accepts(w core.Word) bool {
	if s.nfa == nil {
		s.nfa = s.TS.NFA()
	}
	return s.nfa.Accepts(s.TS.Alphabet.EncodeWord(w))
}

// sampleWord draws a random emitted word from the transition system.
func (s *Sampler) sampleWord() core.Word {
	var w core.Word
	cur := int32(0)
	for steps := 0; steps < 6*s.MaxLen && len(w) < s.MaxLen; steps++ {
		es := s.TS.Out[cur]
		if len(es) == 0 {
			break
		}
		e := es[s.Rng.Intn(len(es))]
		if e.Emit >= 0 {
			w = append(w, s.TS.Alphabet.Decode(int(e.Emit)))
		}
		cur = e.To
	}
	return w
}

// CheckP1 samples the transaction-projection property: removing all
// aborting transactions and any subset of the unfinished ones preserves
// language membership.
func (s *Sampler) CheckP1() *Violation {
	for i := 0; i < s.Samples; i++ {
		w := s.sampleWord()
		for _, keepUnfinished := range []bool{true, false} {
			p := ProjectCommitted(w, keepUnfinished)
			if !s.accepts(p) {
				return &Violation{Property: "P1 (transaction projection)", Word: w, Derived: p}
			}
		}
	}
	return nil
}

// CheckP2 samples thread symmetry: when two threads' transactions do not
// overlap (and nothing aborts), renaming one thread to the other stays in
// the language.
func (s *Sampler) CheckP2() *Violation {
	n := s.TS.Alg.Threads()
	for i := 0; i < s.Samples; i++ {
		w := s.sampleWord()
		if HasAborting(w) {
			w = DropAborting(w)
			if !s.accepts(w) {
				continue // already a P1 matter
			}
		}
		for a := core.Thread(0); int(a) < n; a++ {
			for b := core.Thread(0); int(b) < n; b++ {
				if a == b || !NonOverlapping(w, a, b) {
					continue
				}
				// Renaming must not merge transactions: an unfinished
				// a- or b-transaction followed by more statements of the
				// other thread would fuse with them under the renaming,
				// changing the word's transaction structure. Require all
				// transactions of both threads to be committing, except a
				// trailing unfinished one owning the word's tail.
				if mergesUnderRenaming(w, a, b) {
					continue
				}
				r := RenameThread(w, a, b)
				if !s.accepts(r) {
					return &Violation{Property: "P2 (thread symmetry)", Word: w, Derived: r}
				}
			}
		}
	}
	return nil
}

// CheckP3 samples variable projection: in abort-free words, dropping the
// accesses of any variable subset preserves membership.
func (s *Sampler) CheckP3() *Violation {
	k := s.TS.Alg.Vars()
	for i := 0; i < s.Samples; i++ {
		w := s.sampleWord()
		if HasAborting(w) {
			continue
		}
		for mask := 0; mask < 1<<k; mask++ {
			p := VariableProjection(w, core.VarSet(mask))
			if !s.accepts(p) {
				return &Violation{Property: "P3 (variable projection)", Word: w, Derived: p}
			}
		}
	}
	return nil
}

// CheckAll runs P1–P3 and returns the first violation, if any. (P4,
// monotonicity, quantifies over sequentializations and is checked
// separately by the commutativity samplers below; P5–P6 are the liveness
// analogues of P1 and P3.)
func (s *Sampler) CheckAll() *Violation {
	if v := s.CheckP1(); v != nil {
		return v
	}
	if v := s.CheckP2(); v != nil {
		return v
	}
	if v := s.CheckP3(); v != nil {
		return v
	}
	return nil
}

// CheckUnfinishedCommutative samples the first half of the paper's
// sufficient condition for P4 (monotonicity): a global read commutes left
// over non-conflicting statements of other threads.
func (s *Sampler) CheckUnfinishedCommutative() *Violation {
	for i := 0; i < s.Samples; i++ {
		w := s.sampleWord()
		// The commutativity conditions are stated over S* — words without
		// aborts (an abort elsewhere may owe its enabledness to the very
		// statement being moved).
		if HasAborting(w) || hasAbortStatement(w) {
			continue
		}
		// Pick a global read and slide it left over a non-conflicting
		// directly preceding statement of another thread.
		for pos := 1; pos < len(w); pos++ {
			if w[pos].Cmd.Op != core.OpRead {
				continue
			}
			prev := w[pos-1]
			if prev.T == w[pos].T || prev.Cmd.Op == core.OpCommit || prev.Cmd.Op == core.OpAbort {
				continue
			}
			swapped := w.Clone()
			swapped[pos-1], swapped[pos] = swapped[pos], swapped[pos-1]
			if !s.accepts(swapped) {
				return &Violation{Property: "P4 (unfinished commutativity)", Word: w, Derived: swapped}
			}
		}
	}
	return nil
}

// splitTail decomposes w into w1 · w2 where w2 is the maximal suffix whose
// statements all belong to one thread and contain no commit — the shape of
// the liveness reduction's words (§6.1). ok is false when the tail is
// empty or the whole word.
func splitTail(w core.Word) (w1, w2 core.Word, ok bool) {
	if len(w) == 0 {
		return nil, nil, false
	}
	t := w[len(w)-1].T
	cut := len(w)
	for cut > 0 {
		s := w[cut-1]
		if s.T != t || s.Cmd.Op == core.OpCommit {
			break
		}
		cut--
	}
	if cut == len(w) || cut == 0 {
		return nil, nil, false
	}
	w1, w2 = w[:cut], w[cut:]
	// The paper's decomposition requires that no unfinished transaction of
	// w1 has a statement in w2; since w2 is all one thread's statements,
	// that thread must be at a transaction boundary at the cut.
	for i := cut - 1; i >= 0; i-- {
		if w[i].T != t {
			continue
		}
		if w[i].Cmd.Op != core.OpCommit && w[i].Cmd.Op != core.OpAbort {
			return nil, nil, false // open transaction spans the boundary
		}
		break
	}
	hasAccess := false
	for _, s := range w2 {
		if s.Cmd.Op == core.OpAbort {
			// An abort hides the variable of the command it aborted, so a
			// tail containing aborts cannot be projected soundly from the
			// word alone (the attempted accesses are invisible). The
			// paper's V_2 is defined over the run, which sees them.
			return nil, nil, false
		}
		if s.Cmd.IsAccess() {
			hasAccess = true
		}
	}
	if !hasAccess {
		return nil, nil, false
	}
	return w1, w2, true
}

// hasAbortStatement reports whether the word contains any abort statement
// (HasAborting only sees aborting transactions).
func hasAbortStatement(w core.Word) bool {
	for _, s := range w {
		if s.Cmd.Op == core.OpAbort {
			return true
		}
	}
	return false
}

// CheckP5 samples the liveness transaction-projection property (§6.1): for
// words w1 · w2 with a single-thread commit-free tail, removing the
// aborting transactions of w1 — and, when w1 is abort free and the tail
// touches one variable, projecting w1 to a single thread's transactions —
// stays in the language.
func (s *Sampler) CheckP5() *Violation {
	for i := 0; i < s.Samples; i++ {
		w := s.sampleWord()
		w1, w2, ok := splitTail(w)
		if !ok {
			continue
		}
		// (i) Dropping w1's aborting transactions.
		p := append(DropAborting(w1), w2...)
		if !s.accepts(p) {
			return &Violation{Property: "P5(i) (liveness transaction projection)", Word: w, Derived: p}
		}
		// (ii) With an abort-free prefix and a one-variable tail, keep one
		// prefix thread.
		if HasAborting(w1) || len(w2.Vars()) > 1 {
			continue
		}
		for _, keep := range w1.Threads() {
			q := append(w1.ThreadProjection(keep), w2...)
			if s.accepts(q) {
				goto ok2
			}
		}
		if len(w1.Threads()) > 0 {
			return &Violation{Property: "P5(ii) (liveness transaction projection)", Word: w, Derived: w2}
		}
	ok2:
	}
	return nil
}

// CheckP6 samples the liveness variable-projection property (§6.1): the
// tail projects onto each of its variables, and with an abort-free prefix
// the prefix projects onto the tail's variables.
func (s *Sampler) CheckP6() *Violation {
	for i := 0; i < s.Samples; i++ {
		w := s.sampleWord()
		w1, w2, ok := splitTail(w)
		if !ok {
			continue
		}
		// (i) Some single-variable projection of the tail must survive
		// (the paper's P6(i) is an existential claim).
		vs := w2.Vars()
		if len(vs) > 0 {
			found := false
			var last core.Word
			for _, v := range vs {
				p := append(w1.Clone(), VariableProjection(w2, core.VarSet(0).Add(v))...)
				last = p
				if s.accepts(p) {
					found = true
					break
				}
			}
			if !found {
				return &Violation{Property: "P6(i) (liveness variable projection)", Word: w, Derived: last}
			}
		}
		// (ii) With an abort-free prefix, project the prefix to the tail's
		// variables.
		if HasAborting(w1) {
			continue
		}
		var tailVars core.VarSet
		for _, v := range w2.Vars() {
			tailVars = tailVars.Add(v)
		}
		q := append(VariableProjection(w1, tailVars), w2...)
		if !s.accepts(q) {
			return &Violation{Property: "P6(ii) (liveness variable projection)", Word: w, Derived: q}
		}
	}
	return nil
}

// CheckCommitCommutative samples the second half of the paper's sufficient
// condition for P4, as defined: if wp · wq · s · ws is in the language,
// where s commits transaction x and no statement of wq conflicts with s,
// then wp · x · wq′ · ws is too, where x runs contiguously and wq′ is wq
// with x's other statements removed.
func (s *Sampler) CheckCommitCommutative() *Violation {
	for i := 0; i < s.Samples; i++ {
		w := s.sampleWord()
		// The condition is stated over S* — words without aborts.
		if hasAbortStatement(w) {
			continue
		}
		txs := core.Transactions(w)
		owner := core.TxOf(w, txs)
		pairs := core.ConflictPairs(w)
		for _, x := range txs {
			if x.Status != core.TxCommitting {
				continue
			}
			start, commit := x.First(), x.Last()
			if commit == start {
				continue // empty transaction: nothing to move
			}
			// Preconditions, in the strength the paper's proof context
			// provides (sequentialized prefix, conflict-free move): no
			// statement anywhere before the commit conflicts with it or
			// with any other statement of x, and the moved-over region
			// contains no commits of other transactions. Weaker literal
			// readings are refuted by DSTM — a reader invalidated by the
			// relocated commit loses its remaining reads.
			ok := true
			for _, p := range pairs {
				if owner[p.I] == x || owner[p.J] == x {
					ok = false
					break
				}
			}
			for i := start; ok && i < commit; i++ {
				if owner[i] != x && w[i].Cmd.Op == core.OpCommit {
					ok = false
				}
			}
			if !ok {
				continue
			}
			// Build wp · x · wq′ · ws.
			derived := make(core.Word, 0, len(w))
			derived = append(derived, w[:start]...)
			derived = append(derived, x.Statements(w)...)
			for i := start; i < commit; i++ {
				if owner[i] != x {
					derived = append(derived, w[i])
				}
			}
			derived = append(derived, w[commit+1:]...)
			if !s.accepts(derived) {
				return &Violation{Property: "P4 (commit commutativity)", Word: w, Derived: derived}
			}
		}
	}
	return nil
}
