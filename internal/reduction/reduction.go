// Package reduction implements the word transformations behind the
// paper's reduction theorems (§4 and §6.1) — transaction projection,
// variable projection, and thread renaming — together with randomized
// checkers for the structural properties P1–P6 that a TM must satisfy for
// the theorems to apply.
//
// The reduction theorems themselves are meta-results: Theorem 1 reduces
// safety for arbitrarily many threads and variables to (2,2), Theorem 5
// reduces liveness to (2,1). The checkers here sample the premises on
// bounded instances: they exercise each transformation against a TM's
// language and report violations. Passing the samplers is evidence, not
// proof, that a TM satisfies the structural properties; the paper, too,
// checks them by manual inspection.
package reduction

import (
	"tmcheck/internal/core"
)

// TransactionProjection returns the subsequence of w containing every
// statement of the transactions selected by keep.
func TransactionProjection(w core.Word, keep func(*core.Transaction) bool) core.Word {
	txs := core.Transactions(w)
	owner := core.TxOf(w, txs)
	var out core.Word
	for i := range w {
		if owner[i] != nil && keep(owner[i]) {
			out = append(out, w[i])
		}
	}
	return out
}

// ProjectCommitted keeps committing transactions and, optionally, the
// unfinished ones — the projection used in the proof of Theorem 1 (all
// committing transactions, no aborting ones, a chosen subset of the
// unfinished ones).
func ProjectCommitted(w core.Word, keepUnfinished bool) core.Word {
	return TransactionProjection(w, func(x *core.Transaction) bool {
		switch x.Status {
		case core.TxCommitting:
			return true
		case core.TxUnfinished:
			return keepUnfinished
		default:
			return false
		}
	})
}

// DropAborting removes aborting transactions only — the projection of
// property P5(i).
func DropAborting(w core.Word) core.Word {
	return TransactionProjection(w, func(x *core.Transaction) bool {
		return x.Status != core.TxAborting
	})
}

// VariableProjection keeps every commit and abort statement and the reads
// and writes of the selected variables (the paper's variable projection).
func VariableProjection(w core.Word, keep core.VarSet) core.Word {
	var out core.Word
	for _, s := range w {
		if !s.Cmd.IsAccess() || keep.Has(s.Cmd.V) {
			out = append(out, s)
		}
	}
	return out
}

// RenameThread renames every statement of thread from to thread to.
// Property P2 applies it to non-overlapping transactions.
func RenameThread(w core.Word, from, to core.Thread) core.Word {
	out := w.Clone()
	for i := range out {
		if out[i].T == from {
			out[i].T = to
		}
	}
	return out
}

// NonOverlapping reports whether all transactions of threads a and b in w
// are pairwise ordered — the premise of thread symmetry (P2).
func NonOverlapping(w core.Word, a, b core.Thread) bool {
	txs := core.Transactions(w)
	for _, x := range txs {
		if x.Thread != a {
			continue
		}
		for _, y := range txs {
			if y.Thread != b {
				continue
			}
			if !x.Precedes(y) && !y.Precedes(x) {
				return false
			}
		}
	}
	return true
}

// mergesUnderRenaming reports whether renaming thread a to b would fuse an
// unfinished transaction of one thread with a later transaction of the
// other, changing the word's transaction structure.
func mergesUnderRenaming(w core.Word, a, b core.Thread) bool {
	var last *core.Transaction
	for _, x := range core.Transactions(w) {
		if x.Thread != a && x.Thread != b {
			continue
		}
		if last != nil && last.Status == core.TxUnfinished {
			return true // an unfinished transaction precedes another
		}
		last = x
	}
	return false
}

// HasAborting reports whether w contains an aborting transaction.
func HasAborting(w core.Word) bool {
	for _, x := range core.Transactions(w) {
		if x.Status == core.TxAborting {
			return true
		}
	}
	return false
}
