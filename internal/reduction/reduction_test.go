package reduction

import (
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/tm"
)

func TestTransactionProjectionBasics(t *testing.T) {
	w := core.MustParseWord("(r,1)1, (w,2)2, a2, c1, (r,1)2, (w,1)3")
	// Keep only committing transactions.
	got := ProjectCommitted(w, false)
	want := core.MustParseWord("(r,1)1, c1")
	if !got.Equal(want) {
		t.Errorf("ProjectCommitted(false) = %q, want %q", got, want)
	}
	// Keep unfinished ones too.
	got = ProjectCommitted(w, true)
	want = core.MustParseWord("(r,1)1, c1, (r,1)2, (w,1)3")
	if !got.Equal(want) {
		t.Errorf("ProjectCommitted(true) = %q, want %q", got, want)
	}
}

func TestDropAborting(t *testing.T) {
	w := core.MustParseWord("(r,1)1, (w,2)2, a2, c1, (w,2)2, c2")
	got := DropAborting(w)
	want := core.MustParseWord("(r,1)1, c1, (w,2)2, c2")
	if !got.Equal(want) {
		t.Errorf("DropAborting = %q, want %q", got, want)
	}
}

func TestVariableProjection(t *testing.T) {
	w := core.MustParseWord("(r,1)1, (w,2)1, c1, (r,2)2, a2")
	got := VariableProjection(w, core.VarSet(0).Add(0))
	want := core.MustParseWord("(r,1)1, c1, a2")
	if !got.Equal(want) {
		t.Errorf("VariableProjection = %q, want %q", got, want)
	}
	// Projecting on all variables is the identity.
	if got := VariableProjection(w, core.VarSet(0).Add(0).Add(1)); !got.Equal(w) {
		t.Errorf("full projection changed word to %q", got)
	}
}

func TestRenameThread(t *testing.T) {
	w := core.MustParseWord("(r,1)1, c1, (r,1)2, c2")
	got := RenameThread(w, 1, 0)
	want := core.MustParseWord("(r,1)1, c1, (r,1)1, c1")
	if !got.Equal(want) {
		t.Errorf("RenameThread = %q, want %q", got, want)
	}
}

func TestNonOverlapping(t *testing.T) {
	if !NonOverlapping(core.MustParseWord("(r,1)1, c1, (r,1)2, c2"), 0, 1) {
		t.Error("sequential transactions should be non-overlapping")
	}
	if NonOverlapping(core.MustParseWord("(r,1)1, (r,1)2, c1, c2"), 0, 1) {
		t.Error("interleaved transactions should overlap")
	}
}

func TestHasAborting(t *testing.T) {
	if HasAborting(core.MustParseWord("(r,1)1, c1")) {
		t.Error("no abort expected")
	}
	if !HasAborting(core.MustParseWord("(r,1)1, a1")) {
		t.Error("abort expected")
	}
}

// The paper asserts that the sequential TM, 2PL, DSTM and TL2 satisfy the
// structural properties P1–P4. Sample them.
func TestStructuralPropertiesOfPaperTMs(t *testing.T) {
	systems := []struct {
		alg tm.Algorithm
		cm  tm.ContentionManager
	}{
		{tm.NewSeq(2, 2), nil},
		{tm.NewTwoPL(2, 2), nil},
		{tm.NewDSTM(2, 2), nil},
		{tm.NewTL2(2, 2), nil},
	}
	for _, sys := range systems {
		ts := explore.Build(sys.alg, sys.cm)
		s := NewSampler(ts, 42)
		if v := s.CheckAll(); v != nil {
			t.Errorf("%s: %v", ts.Name(), v)
		}
	}
}

// The paper (§4) notes that a contention manager can break P1: a manager
// whose decisions depend on past aborts makes an abort of one transaction
// the reason a later one commits. The timid manager is exactly of that
// kind — removing an aborting transaction changes the manager's state.
// Sampling may or may not surface a violation on short words, so this test
// only documents the mechanism: it must not report violations for the
// stateless managers.
func TestStatelessManagersPreserveP1(t *testing.T) {
	for _, cm := range []tm.ContentionManager{tm.Aggressive{}, tm.Polite{}} {
		ts := explore.Build(tm.NewDSTM(2, 2), cm)
		s := NewSampler(ts, 43)
		if v := s.CheckP1(); v != nil {
			t.Errorf("dstm+%s: %v", cm.Name(), v)
		}
	}
}

func TestUnfinishedCommutativitySamples(t *testing.T) {
	for _, alg := range []tm.Algorithm{tm.NewSeq(2, 2), tm.NewTwoPL(2, 2), tm.NewDSTM(2, 2), tm.NewTL2(2, 2)} {
		ts := explore.Build(alg, nil)
		s := NewSampler(ts, 44)
		if v := s.CheckUnfinishedCommutative(); v != nil {
			t.Errorf("%s: %v", alg.Name(), v)
		}
	}
}

// End-to-end reduction-theorem narrative on a concrete word: starting from
// the Figure 1(b) word on 3 threads and 3 variables, the proof's
// transformations produce a 2-thread 2-variable word that is still not
// strictly serializable.
func TestReductionNarrativeFigure1b(t *testing.T) {
	w := core.MustParseWord("(w,1)2, (r,2)2, (r,3)3, (r,1)1, c2, (w,2)3, (w,3)1, c1, c3")
	if core.IsStrictlySerializable(w) {
		t.Fatal("premise: Figure 1(b) word must not be strictly serializable")
	}
	// Project away nothing (no aborts, all commit), then project variables
	// to the pair {v1, v3} that carries one of the conflict-cycle edges.
	p := VariableProjection(w, core.VarSet(0).Add(0).Add(2))
	if len(p) >= len(w) {
		t.Fatal("projection should shrink the word")
	}
	// The projected word involves threads 1, 2, 3 still; keeping just two
	// threads' transactions of a cycle needs the renaming step in general.
	// Here projecting to {v1,v3} keeps the cycle x→y (via v1) only if y
	// and z merge; simply check the transformations compose without
	// leaving the framework.
	if got := len(p.Threads()); got == 0 {
		t.Fatal("empty projection")
	}
}

// The violation error string mentions both words.
func TestViolationError(t *testing.T) {
	v := &Violation{
		Property: "P1",
		Word:     core.MustParseWord("(r,1)1, c1"),
		Derived:  core.MustParseWord("c1"),
	}
	msg := v.Error()
	if msg == "" || len(msg) < 10 {
		t.Errorf("Error() = %q", msg)
	}
}

// The liveness reduction's structural properties P5 and P6 hold on samples
// for the paper's TMs.
func TestLivenessStructuralProperties(t *testing.T) {
	for _, alg := range []tm.Algorithm{tm.NewSeq(2, 2), tm.NewTwoPL(2, 2), tm.NewDSTM(2, 2), tm.NewTL2(2, 2)} {
		ts := explore.Build(alg, nil)
		s := NewSampler(ts, 45)
		if v := s.CheckP5(); v != nil {
			t.Errorf("%s: %v", alg.Name(), v)
		}
		if v := s.CheckP6(); v != nil {
			t.Errorf("%s: %v", alg.Name(), v)
		}
	}
}

// Commit commutativity (the second half of P4's sufficient condition)
// holds on samples.
func TestCommitCommutativitySamples(t *testing.T) {
	for _, alg := range []tm.Algorithm{tm.NewSeq(2, 2), tm.NewTwoPL(2, 2), tm.NewDSTM(2, 2), tm.NewTL2(2, 2)} {
		ts := explore.Build(alg, nil)
		s := NewSampler(ts, 46)
		if v := s.CheckCommitCommutative(); v != nil {
			t.Errorf("%s: %v", alg.Name(), v)
		}
	}
}
