package automata

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genSmallNFA is a quick.Generator producing random NFAs with ≤ 6 states
// over a binary alphabet.
type genSmallNFA struct {
	A *NFA
}

// Generate implements quick.Generator.
func (genSmallNFA) Generate(rng *rand.Rand, size int) reflect.Value {
	states := 1 + rng.Intn(6)
	a := NewNFA(2)
	for i := 1; i < states; i++ {
		a.AddState()
	}
	for s := 0; s < states; s++ {
		for l := 0; l < 2; l++ {
			for e := 0; e < 2; e++ {
				if rng.Float64() < 0.3 {
					a.AddEdge(s, l, rng.Intn(states))
				}
			}
		}
		if rng.Float64() < 0.2 {
			a.AddEps(s, rng.Intn(states))
		}
	}
	return reflect.ValueOf(genSmallNFA{A: a})
}

func randomWords(rng *rand.Rand, alphabet, count, maxLen int) [][]int {
	out := make([][]int, count)
	for i := range out {
		w := make([]int, rng.Intn(maxLen+1))
		for j := range w {
			w[j] = rng.Intn(alphabet)
		}
		out[i] = w
	}
	return out
}

func TestQuickDeterminizePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if err := quick.Check(func(g genSmallNFA) bool {
		d := g.A.Determinize()
		for _, w := range randomWords(rng, 2, 40, 8) {
			if g.A.Accepts(w) != d.Accepts(w) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinimizePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if err := quick.Check(func(g genSmallNFA) bool {
		d := g.A.Determinize()
		m := d.Minimize()
		if m.NumStates() > d.NumStates() {
			return false
		}
		for _, w := range randomWords(rng, 2, 40, 8) {
			if d.Accepts(w) != m.Accepts(w) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickInclusionIsReflexive(t *testing.T) {
	if err := quick.Check(func(g genSmallNFA) bool {
		ok, _ := IncludedInNFA(g.A, g.A)
		return ok
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickInclusionAgainstOwnDeterminization(t *testing.T) {
	if err := quick.Check(func(g genSmallNFA) bool {
		d := g.A.Determinize()
		okFwd, _ := IncludedInDFA(g.A, d)
		okBwd, _ := IncludedInNFA(d.ToNFA(), g.A)
		return okFwd && okBwd
	}, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickCounterexamplesAreValid(t *testing.T) {
	if err := quick.Check(func(g1, g2 genSmallNFA) bool {
		a, b := g1.A, g2.A
		if ok, cex := IncludedInNFA(a, b); !ok {
			if !a.Accepts(cex) || b.Accepts(cex) {
				return false
			}
		}
		if ok, cex := IncludedInDFA(a, b.Determinize()); !ok {
			if !a.Accepts(cex) || b.Accepts(cex) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickBitSetSubsetAntisymmetry(t *testing.T) {
	if err := quick.Check(func(raw1, raw2 []byte) bool {
		a := NewBitSet(128)
		b := NewBitSet(128)
		for _, x := range raw1 {
			a.Add(int(x) % 128)
		}
		for _, x := range raw2 {
			b.Add(int(x) % 128)
		}
		if a.SubsetOf(b) && b.SubsetOf(a) && !a.Equal(b) {
			return false
		}
		if a.Equal(b) && (!a.SubsetOf(b) || !b.SubsetOf(a)) {
			return false
		}
		if a.Equal(b) && a.Hash() != b.Hash() {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickBitSetMembersMatchHas(t *testing.T) {
	if err := quick.Check(func(raw []byte) bool {
		b := NewBitSet(200)
		want := map[int]bool{}
		for _, x := range raw {
			v := int(x) % 200
			b.Add(v)
			want[v] = true
		}
		mem := b.Members()
		if len(mem) != len(want) || b.Len() != len(want) {
			return false
		}
		for _, v := range mem {
			if !want[v] || !b.Has(v) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
