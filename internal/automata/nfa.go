// Package automata provides the finite-automata substrate of the model
// checker: nondeterministic and deterministic finite automata over an
// integer letter alphabet, subset construction, minimization, and the
// language-inclusion procedures the paper relies on — the linear product
// check against a deterministic specification and the antichain algorithm
// of De Wulf, Doyen, Henzinger and Raskin (CAV 2006, the paper's ref. [28])
// for inclusion in a nondeterministic specification.
//
// All automata here recognize prefix-closed "safety" languages: every state
// is accepting, and a word is in the language exactly when it labels a run
// from the initial state. This matches the TM setting, where the language
// of a TM algorithm and of a TM specification are both prefix closed.
package automata

import "fmt"

// NFA is a nondeterministic finite automaton with ε-transitions over the
// alphabet {0, …, Alphabet()-1}. Every state is accepting.
type NFA struct {
	alphabet int
	initial  int
	// trans[s][l] lists the successors of state s on letter l.
	trans [][][]int32
	eps   [][]int32
}

// NewNFA returns an automaton over an alphabet of the given size, with a
// single initial state 0 already allocated.
func NewNFA(alphabet int) *NFA {
	a := &NFA{alphabet: alphabet, initial: 0}
	a.AddState()
	return a
}

// Alphabet returns the alphabet size.
func (a *NFA) Alphabet() int { return a.alphabet }

// NumStates returns the number of allocated states.
func (a *NFA) NumStates() int { return len(a.trans) }

// Initial returns the initial state.
func (a *NFA) Initial() int { return a.initial }

// SetInitial designates s as the initial state.
func (a *NFA) SetInitial(s int) { a.initial = s }

// AddState allocates a fresh state and returns its id.
func (a *NFA) AddState() int {
	a.trans = append(a.trans, make([][]int32, a.alphabet))
	a.eps = append(a.eps, nil)
	return len(a.trans) - 1
}

// AddEdge adds the transition from --letter--> to.
func (a *NFA) AddEdge(from, letter, to int) {
	if letter < 0 || letter >= a.alphabet {
		panic(fmt.Sprintf("automata: letter %d out of range [0,%d)", letter, a.alphabet))
	}
	a.trans[from][letter] = append(a.trans[from][letter], int32(to))
}

// AddEps adds an ε-transition from --ε--> to.
func (a *NFA) AddEps(from, to int) {
	a.eps[from] = append(a.eps[from], int32(to))
}

// Succ returns the successors of s on letter l.
func (a *NFA) Succ(s, l int) []int32 { return a.trans[s][l] }

// EpsSucc returns the ε-successors of s.
func (a *NFA) EpsSucc(s int) []int32 { return a.eps[s] }

// EpsClose extends set in place with everything reachable via ε-transitions.
func (a *NFA) EpsClose(set *BitSet) {
	stack := set.Members()
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.eps[s] {
			if !set.Has(int(t)) {
				set.Add(int(t))
				stack = append(stack, int(t))
			}
		}
	}
}

// Step returns εclose(δ(set, l)).
func (a *NFA) Step(set *BitSet, l int) *BitSet {
	out := NewBitSet(a.NumStates())
	for _, s := range set.Members() {
		for _, t := range a.trans[s][l] {
			out.Add(int(t))
		}
	}
	a.EpsClose(out)
	return out
}

// InitialSet returns εclose({initial}).
func (a *NFA) InitialSet() *BitSet {
	set := NewBitSet(a.NumStates())
	set.Add(a.initial)
	a.EpsClose(set)
	return set
}

// Accepts reports whether the word labels some run from the initial state.
func (a *NFA) Accepts(word []int) bool {
	set := a.InitialSet()
	for _, l := range word {
		set = a.Step(set, l)
		if set.Empty() {
			return false
		}
	}
	return true
}

// CountReachable returns the number of states reachable from the initial
// state via letter or ε transitions.
func (a *NFA) CountReachable() int {
	seen := NewBitSet(a.NumStates())
	seen.Add(a.initial)
	stack := []int{a.initial}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		push := func(t int32) {
			if !seen.Has(int(t)) {
				seen.Add(int(t))
				stack = append(stack, int(t))
			}
		}
		for l := 0; l < a.alphabet; l++ {
			for _, t := range a.trans[s][l] {
				push(t)
			}
		}
		for _, t := range a.eps[s] {
			push(t)
		}
	}
	return seen.Len()
}

// Determinize performs the subset construction, producing a DFA that
// recognizes the same prefix-closed language. The empty subset is never
// materialized (a missing DFA transition encodes rejection).
func (a *NFA) Determinize() *DFA {
	d, err := a.DeterminizeBounded(0)
	if err != nil {
		panic(err) // unreachable: 0 means no bound
	}
	return d
}

// DeterminizeBounded is Determinize with a cap on the number of subset
// states; maxStates ≤ 0 means unbounded. It returns an error when the
// construction exceeds the cap, since subset construction can blow up
// exponentially (the reason the paper hand-builds deterministic
// specifications instead of determinizing the nondeterministic ones).
func (a *NFA) DeterminizeBounded(maxStates int) (*DFA, error) {
	d := NewDFA(a.alphabet)
	type key = uint64
	index := map[key][]int{} // hash -> candidate DFA state ids
	sets := []*BitSet{}      // DFA state id -> subset

	lookup := func(s *BitSet) (int, bool) {
		for _, id := range index[s.Hash()] {
			if sets[id].Equal(s) {
				return id, true
			}
		}
		return 0, false
	}
	intern := func(s *BitSet) (int, bool) {
		if id, ok := lookup(s); ok {
			return id, false
		}
		var id int
		if len(sets) == 0 {
			id = 0 // the pre-allocated initial DFA state
		} else {
			id = d.AddState()
		}
		sets = append(sets, s)
		index[s.Hash()] = append(index[s.Hash()], id)
		return id, true
	}

	init := a.InitialSet()
	id, _ := intern(init)
	work := []int{id}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for l := 0; l < a.alphabet; l++ {
			next := a.Step(sets[cur], l)
			if next.Empty() {
				continue
			}
			nid, fresh := intern(next)
			d.SetEdge(cur, l, nid)
			if fresh {
				if maxStates > 0 && d.NumStates() > maxStates {
					return nil, fmt.Errorf("automata: subset construction exceeded %d states", maxStates)
				}
				work = append(work, nid)
			}
		}
	}
	return d, nil
}
