package automata

import (
	"fmt"
	"sync"

	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
)

// DenseNFA is a compressed-sparse-row view of an NFA, built for the hot
// deterministic-inclusion walk: per state, the ε-successors and the
// letter transitions live in flat arrays, with the letter transitions
// grouped by ascending letter. Iterating a state touches only the
// letters it actually has — the boxed NFA walk scans the whole alphabet
// and chases a [][]int32 row per state — and the walk allocates nothing
// per pair.
//
// The successor enumeration order is exactly the boxed walk's: all
// ε-successors in edge-insertion order, then the letters ascending,
// each letter's successors in edge-insertion order. Counterexamples of
// the dense inclusion check are therefore bit-identical to
// IncludedInDFA's.
type DenseNFA struct {
	alphabet  int
	initial   int32
	numStates int
	// Letter transitions of state s occupy lets/tos[letOff[s]:letOff[s+1]],
	// sorted by letter (stable: insertion order within a letter).
	letOff []int32
	lets   []int16
	tos    []int32
	// ε-transitions of state s are epsTo[epsOff[s]:epsOff[s+1]], in
	// insertion order.
	epsOff []int32
	epsTo  []int32
}

// Alphabet returns the alphabet size.
func (a *DenseNFA) Alphabet() int { return a.alphabet }

// NumStates returns the number of states.
func (a *DenseNFA) NumStates() int { return a.numStates }

// Initial returns the initial state.
func (a *DenseNFA) Initial() int { return int(a.initial) }

// NumEdges returns the total transition count (letters plus ε).
func (a *DenseNFA) NumEdges() int { return len(a.tos) + len(a.epsTo) }

// DenseBuilder assembles a DenseNFA state by state in id order: call
// StartState for each state 0, 1, …, add that state's transitions with
// Edge and Eps (in any letter order — the builder counting-sorts each
// state's letter edges), then Finish.
type DenseBuilder struct {
	alphabet int
	n        int
	// Staged letter edges of the state currently open; flushed sorted at
	// the next StartState or Finish.
	stageLet []int16
	stageTo  []int32
	// counts is the per-letter bucket array of the counting sort, all
	// zero between flushes.
	counts []int32
	out    DenseNFA
}

// NewDenseBuilder returns a builder for automata over an alphabet of
// the given size.
func NewDenseBuilder(alphabet int) *DenseBuilder {
	if alphabet < 0 || alphabet > 1<<15-1 {
		panic(fmt.Sprintf("automata: alphabet %d out of range for dense letters", alphabet))
	}
	b := &DenseBuilder{alphabet: alphabet, counts: make([]int32, alphabet)}
	b.out.alphabet = alphabet
	b.out.letOff = append(b.out.letOff, 0)
	b.out.epsOff = append(b.out.epsOff, 0)
	return b
}

// StartState opens the next state (ids are assigned in call order,
// starting at 0) and returns its id.
func (b *DenseBuilder) StartState() int {
	b.flush()
	b.n++
	return b.n - 1
}

// Edge adds a transition of the open state on letter to state to.
func (b *DenseBuilder) Edge(letter, to int) {
	if letter < 0 || letter >= b.alphabet {
		panic(fmt.Sprintf("automata: letter %d out of range [0,%d)", letter, b.alphabet))
	}
	b.stageLet = append(b.stageLet, int16(letter))
	b.stageTo = append(b.stageTo, int32(to))
}

// Eps adds an ε-transition of the open state to state to.
func (b *DenseBuilder) Eps(to int) {
	b.out.epsTo = append(b.out.epsTo, int32(to))
}

// flush closes the open state: counting-sorts its staged letter edges
// into the flat arrays and records both offset fenceposts.
func (b *DenseBuilder) flush() {
	if b.n == 0 {
		return
	}
	if m := len(b.stageLet); m > 0 {
		base := int32(len(b.out.lets))
		b.out.lets = append(b.out.lets, b.stageLet...)
		b.out.tos = append(b.out.tos, b.stageTo...)
		for _, l := range b.stageLet {
			b.counts[l]++
		}
		pos := base
		for l := range b.counts {
			c := b.counts[l]
			if c == 0 {
				continue // keep the all-zero invariant for absent letters
			}
			b.counts[l] = pos
			pos += c
		}
		for i, l := range b.stageLet {
			p := b.counts[l]
			b.out.lets[p] = l
			b.out.tos[p] = b.stageTo[i]
			b.counts[l] = p + 1
		}
		for _, l := range b.stageLet {
			b.counts[l] = 0
		}
		b.stageLet = b.stageLet[:0]
		b.stageTo = b.stageTo[:0]
	}
	b.out.letOff = append(b.out.letOff, int32(len(b.out.lets)))
	b.out.epsOff = append(b.out.epsOff, int32(len(b.out.epsTo)))
}

// Finish closes the last state and returns the automaton with the
// given initial state. The builder must not be reused afterwards.
func (b *DenseBuilder) Finish(initial int) *DenseNFA {
	b.flush()
	if initial < 0 || initial >= b.n {
		panic(fmt.Sprintf("automata: initial state %d out of range [0,%d)", initial, b.n))
	}
	b.out.initial = int32(initial)
	b.out.numStates = b.n
	return &b.out
}

// DenseFromNFA converts a boxed NFA into its dense view, preserving the
// per-state successor enumeration order of the inclusion walk.
func DenseFromNFA(a *NFA) *DenseNFA {
	b := NewDenseBuilder(a.alphabet)
	for s := 0; s < a.NumStates(); s++ {
		b.StartState()
		for _, t := range a.eps[s] {
			b.Eps(int(t))
		}
		for l := 0; l < a.alphabet; l++ {
			for _, t := range a.trans[s][l] {
				b.Edge(l, int(t))
			}
		}
	}
	return b.Finish(a.initial)
}

// denseBitsLimit bounds the product size (NFA states × DFA states) for
// which the dense inclusion check keeps a one-bit-per-pair visited
// table; 2²⁸ bits = 32 MiB. Larger products fall back to a hash set.
const denseBitsLimit = 1 << 28

// denseBitsPool recycles the visited bitsets across checks. Every
// pooled slice upholds the all-zero invariant: users clear exactly the
// bits they set (those in their BFS queue) before returning it.
var denseBitsPool sync.Pool

func getDenseBits(words int) []uint64 {
	if v, ok := denseBitsPool.Get().(*[]uint64); ok && len(*v) >= words {
		return (*v)[:words]
	}
	return make([]uint64, words)
}

func putDenseBits(bits []uint64, touched []int64) {
	for _, pair := range touched {
		bits[pair>>6] &^= 1 << uint(pair&63)
	}
	full := bits[:cap(bits)]
	denseBitsPool.Put(&full)
}

// pnode is one search-tree node of the dense inclusion walk; node i
// corresponds to the pair at queue position i.
type pnode struct {
	parent int32
	letter int16 // -1 for the root and for ε-steps
}

// denseWalkBufs holds the reusable queue and parent-tree buffers of
// one dense inclusion walk.
type denseWalkBufs struct {
	nodes []pnode
	queue []int64
}

var denseWalkPool = sync.Pool{New: func() any { return new(denseWalkBufs) }}

// IncludedInDFADense reports whether L(a) ⊆ L(d), like IncludedInDFA
// but on the dense view. The counterexample is bit-identical to the
// boxed check's.
func IncludedInDFADense(a *DenseNFA, d *DFA) (bool, []int) {
	ok, cex, _, _ := IncludedInDFADenseGuarded(a, d, guard.New(nil, 0, 0))
	return ok, cex
}

// IncludedInDFADenseGuarded is the dense-array deterministic inclusion
// check: the same BFS over product pairs as IncludedInDFAGuarded —
// identical verdicts, counterexamples, pair counts, and guard
// consultation points — but walking CSR successor arrays with a pooled
// one-bit visited table, allocating only for queue growth.
func IncludedInDFADenseGuarded(a *DenseNFA, d *DFA, g *guard.Guard) (ok bool, cex []int, st InclusionStats, err error) {
	width := int64(d.NumStates() + 1)
	total := int64(a.numStates) * width
	w := denseWalkPool.Get().(*denseWalkBufs)
	nodes := append(w.nodes[:0], pnode{parent: -1, letter: -1})
	queue := w.queue[:0]

	var bits []uint64
	var seen map[int64]struct{}
	if total <= denseBitsLimit {
		bits = getDenseBits(int((total + 63) >> 6))
	} else {
		seen = make(map[int64]struct{})
	}

	// push marks a pair visited and enqueues it; node index == queue
	// position, so the dequeue loop never looks a pair's index up.
	push := func(pair int64, parent int32, letter int16) {
		if bits != nil {
			wi, bi := pair>>6, uint(pair&63)
			if bits[wi]>>bi&1 != 0 {
				return
			}
			bits[wi] |= 1 << bi
		} else {
			if _, dup := seen[pair]; dup {
				return
			}
			seen[pair] = struct{}{}
		}
		nodes = append(nodes, pnode{parent: parent, letter: letter})
		queue = append(queue, pair)
	}

	buildWord := func(idx int32, lastLetter int16) []int {
		rev := []int{int(lastLetter)}
		for idx > 0 {
			if nodes[idx].letter >= 0 {
				rev = append(rev, int(nodes[idx].letter))
			}
			idx = nodes[idx].parent
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}

	record := func(ok bool, cex []int, err error) (bool, []int, InclusionStats, error) {
		st = InclusionStats{PairsVisited: len(queue), CexLen: len(cex)}
		obs.Inc("automata.dfa_inclusion.checks", 1)
		obs.Inc("automata.dfa_inclusion.pairs", int64(st.PairsVisited))
		if bits != nil {
			putDenseBits(bits, queue)
		}
		w.nodes, w.queue = nodes, queue
		denseWalkPool.Put(w)
		return ok, cex, st, err
	}

	start := int64(a.initial)*width + int64(d.Initial())
	if bits != nil {
		bits[start>>6] |= 1 << uint(start&63)
	} else {
		seen[start] = struct{}{}
	}
	queue = append(queue, start)
	guarded := g.Active()
	for qi := 0; qi < len(queue); qi++ {
		if guarded {
			if gerr := g.Check(len(queue)); gerr != nil {
				return record(false, nil, gerr)
			}
		}
		pair := queue[qi]
		n := int32(pair / width)
		dd := int64(pair % width)
		for _, n2 := range a.epsTo[a.epsOff[n]:a.epsOff[n+1]] {
			push(int64(n2)*width+dd, int32(qi), -1)
		}
		row := d.trans[dd]
		end := a.letOff[n+1]
		for i := a.letOff[n]; i < end; {
			l := a.lets[i]
			d2 := row[l]
			if d2 < 0 {
				return record(false, buildWord(int32(qi), l), nil)
			}
			for ; i < end && a.lets[i] == l; i++ {
				push(int64(a.tos[i])*width+int64(d2), int32(qi), l)
			}
		}
	}
	return record(true, nil, nil)
}
