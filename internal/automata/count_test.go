package automata

import (
	"math/rand"
	"testing"
)

func TestCountWordsSimpleChain(t *testing.T) {
	// Language: prefixes of 0·1·2 — exactly one word per length 0..3.
	d := chain(3, []int{0, 1, 2}).Determinize()
	counts := CountWords(d, 5)
	want := []uint64{1, 1, 1, 1, 0, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestCountWordsFullLanguage(t *testing.T) {
	// Complete one-state DFA over a binary alphabet: 2^L words per length.
	d := NewDFA(2)
	d.SetEdge(0, 0, 0)
	d.SetEdge(0, 1, 0)
	counts := CountWords(d, 10)
	for l := 0; l <= 10; l++ {
		if counts[l] != 1<<uint(l) {
			t.Errorf("counts[%d] = %d, want %d", l, counts[l], 1<<uint(l))
		}
	}
}

func TestCountWordsNFAMatchesDFA(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		a := randomNFA(rng, 5, 2)
		d := a.Determinize()
		got, ok := CountWordsNFA(a, 7, 0)
		if !ok {
			t.Fatal("unbounded count reported truncation")
		}
		want := CountWords(d, 7)
		for l := range want {
			if got[l] != want[l] {
				t.Fatalf("iteration %d: counts[%d] = %d, want %d", i, l, got[l], want[l])
			}
		}
	}
}

func TestCountWordsNFAMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomNFA(rng, 5, 2)
	counts, _ := CountWordsNFA(a, 6, 0)
	// Count words of exactly length 6 via recursion over accepted
	// prefixes (prefix-closed language: extensions of rejected prefixes
	// are rejected).
	total := uint64(0)
	var rec func(prefix []int)
	rec = func(prefix []int) {
		if len(prefix) == 6 {
			total++
			return
		}
		for l := 0; l < 2; l++ {
			w := append(prefix[:len(prefix):len(prefix)], l)
			if a.Accepts(w) {
				rec(w)
			}
		}
	}
	rec(nil)
	if counts[6] != total {
		t.Errorf("counts[6] = %d, enumeration = %d", counts[6], total)
	}
}

func TestCountWordsNFABounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomNFA(rng, 8, 2)
	if _, ok := CountWordsNFA(a, 10, 1); ok {
		t.Error("expected truncation with maxStates = 1")
	}
}
