package automata

// CountWords returns, for each length 0..maxLen, the number of distinct
// words of that length accepted by the DFA. Because the automaton is
// deterministic and every state accepting, accepted words of length L
// correspond exactly to paths of length L from the initial state, so a
// simple dynamic program counts them.
//
// Applied to the deterministic safety specifications this counts the
// strictly serializable / opaque words per length; applied to a
// (determinized) TM language it measures the TM's permissiveness — how
// many of those behaviours the TM actually admits.
func CountWords(d *DFA, maxLen int) []uint64 {
	counts := make([]uint64, maxLen+1)
	cur := make([]uint64, d.NumStates())
	next := make([]uint64, d.NumStates())
	cur[d.Initial()] = 1
	counts[0] = 1
	for l := 1; l <= maxLen; l++ {
		for i := range next {
			next[i] = 0
		}
		var total uint64
		for s, c := range cur {
			if c == 0 {
				continue
			}
			for a := 0; a < d.Alphabet(); a++ {
				if t := d.Succ(s, a); t >= 0 {
					next[t] += c
					total += c
				}
			}
		}
		counts[l] = total
		cur, next = next, cur
	}
	return counts
}

// CountWordsNFA counts accepted words per length for an NFA by on-the-fly
// subset construction with memoized subsets. The subset space can be
// exponential; maxStates bounds the number of distinct subsets
// materialized (0 = unbounded) and the second return value reports
// whether the computation stayed within the bound.
func CountWordsNFA(a *NFA, maxLen, maxStates int) ([]uint64, bool) {
	type subsetID = int
	var sets []*BitSet
	index := map[uint64][]subsetID{}
	intern := func(s *BitSet) (subsetID, bool) {
		h := s.Hash()
		for _, id := range index[h] {
			if sets[id].Equal(s) {
				return id, true
			}
		}
		sets = append(sets, s)
		index[h] = append(index[h], len(sets)-1)
		return len(sets) - 1, false
	}
	init, _ := intern(a.InitialSet())

	counts := make([]uint64, maxLen+1)
	counts[0] = 1
	cur := map[subsetID]uint64{init: 1}
	// trans caches each subset's successors per letter.
	trans := map[subsetID][]int{}
	for l := 1; l <= maxLen; l++ {
		next := map[subsetID]uint64{}
		var total uint64
		for id, c := range cur {
			row, ok := trans[id]
			if !ok {
				row = make([]int, a.Alphabet())
				for letter := 0; letter < a.Alphabet(); letter++ {
					s2 := a.Step(sets[id], letter)
					if s2.Empty() {
						row[letter] = -1
						continue
					}
					nid, _ := intern(s2)
					row[letter] = nid
					if maxStates > 0 && len(sets) > maxStates {
						return nil, false
					}
				}
				trans[id] = row
			}
			for _, nid := range row {
				if nid >= 0 {
					next[nid] += c
					total += c
				}
			}
		}
		counts[l] = total
		cur = next
	}
	return counts, true
}
