package automata

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestQuickDenseInclusionMatchesBoxed cross-checks the dense
// deterministic inclusion walk against the boxed one on random automata
// pairs: verdict, counterexample word, and pair count must all be
// bit-identical (the counterexample contract the safety engines rely
// on).
func TestQuickDenseInclusionMatchesBoxed(t *testing.T) {
	if err := quick.Check(func(g1, g2 genSmallNFA) bool {
		a, d := g1.A, g2.A.Determinize()
		okB, cexB, stB := IncludedInDFAStats(a, d)
		okD, cexD, stD, err := IncludedInDFADenseGuarded(DenseFromNFA(a), d, nil)
		if err != nil {
			return false
		}
		return okB == okD && reflect.DeepEqual(cexB, cexD) &&
			stB.PairsVisited == stD.PairsVisited && stB.CexLen == stD.CexLen
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDenseFromNFAPreservesShape checks the CSR view state for state:
// same ε-successor sequence and, per letter, the same successor
// sequence as the boxed automaton.
func TestDenseFromNFAPreservesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := genSmallNFA{}.Generate(rng, 10).Interface().(genSmallNFA)
		a := g.A
		dn := DenseFromNFA(a)
		if dn.NumStates() != a.NumStates() || dn.Initial() != a.Initial() || dn.Alphabet() != a.Alphabet() {
			t.Fatalf("shape mismatch: %d/%d states, initial %d/%d",
				dn.NumStates(), a.NumStates(), dn.Initial(), a.Initial())
		}
		for s := 0; s < a.NumStates(); s++ {
			eps := dn.epsTo[dn.epsOff[s]:dn.epsOff[s+1]]
			if !reflect.DeepEqual(append([]int32{}, eps...), append([]int32{}, a.EpsSucc(s)...)) {
				t.Fatalf("state %d: eps %v, want %v", s, eps, a.EpsSucc(s))
			}
			i := dn.letOff[s]
			for l := 0; l < a.Alphabet(); l++ {
				var got []int32
				for ; i < dn.letOff[s+1] && int(dn.lets[i]) == l; i++ {
					got = append(got, dn.tos[i])
				}
				if !reflect.DeepEqual(got, append([]int32(nil), a.Succ(s, l)...)) && len(a.Succ(s, l)) > 0 {
					t.Fatalf("state %d letter %d: %v, want %v", s, l, got, a.Succ(s, l))
				}
			}
			if i != dn.letOff[s+1] {
				t.Fatalf("state %d: letters not ascending", s)
			}
		}
	}
}
