package automata

import (
	"math/rand"
	"testing"
)

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(130)
	if !b.Empty() || b.Len() != 0 || b.Cap() != 130 {
		t.Fatal("fresh bitset should be empty")
	}
	b.Add(0)
	b.Add(64)
	b.Add(129)
	if b.Len() != 3 || !b.Has(64) || b.Has(63) {
		t.Errorf("bitset contents wrong: %v", b.Members())
	}
	got := b.Members()
	want := []int{0, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	c := b.Clone()
	c.Add(5)
	if b.Has(5) {
		t.Error("Clone shares storage")
	}
	if !b.SubsetOf(c) || c.SubsetOf(b) {
		t.Error("subset relation wrong")
	}
	if b.Equal(c) || !b.Equal(b.Clone()) {
		t.Error("equality wrong")
	}
}

func TestBitSetHashDistinguishes(t *testing.T) {
	a := NewBitSet(64)
	b := NewBitSet(64)
	a.Add(1)
	b.Add(2)
	if a.Hash() == b.Hash() {
		t.Error("distinct singletons hashed equal (possible but suspicious)")
	}
	b2 := NewBitSet(64)
	b2.Add(2)
	if b.Hash() != b2.Hash() {
		t.Error("equal sets must hash equal")
	}
}

// chain builds the NFA accepting prefixes of the single word given.
func chain(alphabet int, word []int) *NFA {
	a := NewNFA(alphabet)
	cur := a.Initial()
	for _, l := range word {
		next := a.AddState()
		a.AddEdge(cur, l, next)
		cur = next
	}
	return a
}

func TestNFAAccepts(t *testing.T) {
	a := chain(3, []int{0, 1, 2})
	for _, tc := range []struct {
		w    []int
		want bool
	}{
		{nil, true},
		{[]int{0}, true},
		{[]int{0, 1}, true},
		{[]int{0, 1, 2}, true},
		{[]int{1}, false},
		{[]int{0, 1, 2, 0}, false},
		{[]int{0, 2}, false},
	} {
		if got := a.Accepts(tc.w); got != tc.want {
			t.Errorf("Accepts(%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestNFAEpsilon(t *testing.T) {
	// 0 --ε--> 1 --a--> 2, so "a" is accepted from 0 via the ε-hop.
	a := NewNFA(2)
	s1 := a.AddState()
	s2 := a.AddState()
	a.AddEps(a.Initial(), s1)
	a.AddEdge(s1, 0, s2)
	if !a.Accepts([]int{0}) {
		t.Error("ε-transition not followed")
	}
	if a.Accepts([]int{1}) {
		t.Error("letter 1 should be rejected")
	}
	init := a.InitialSet()
	if init.Len() != 2 || !init.Has(0) || !init.Has(s1) {
		t.Errorf("InitialSet = %v", init.Members())
	}
}

func TestNFAEpsilonChainClosure(t *testing.T) {
	// ε-closure must be transitive.
	a := NewNFA(1)
	s1 := a.AddState()
	s2 := a.AddState()
	s3 := a.AddState()
	a.AddEps(0, s1)
	a.AddEps(s1, s2)
	a.AddEps(s2, s3)
	a.AddEdge(s3, 0, 0)
	if !a.Accepts([]int{0, 0}) {
		t.Error("transitive ε-closure failed")
	}
	if got := a.CountReachable(); got != 4 {
		t.Errorf("CountReachable = %d, want 4", got)
	}
}

func TestDeterminizeSimple(t *testing.T) {
	// Nondeterministic automaton: on letter 0 go to a state that allows 1,
	// or to a state that allows 2. The language {ε, 0, 01, 02}.
	a := NewNFA(3)
	p := a.AddState()
	q := a.AddState()
	a.AddEdge(0, 0, p)
	a.AddEdge(0, 0, q)
	a.AddEdge(p, 1, p)
	a.AddEdge(q, 2, q)
	d := a.Determinize()
	for _, tc := range []struct {
		w    []int
		want bool
	}{
		{nil, true},
		{[]int{0}, true},
		{[]int{0, 1}, true},
		{[]int{0, 2}, true},
		{[]int{0, 1, 2}, false},
		{[]int{1}, false},
	} {
		if got := d.Accepts(tc.w); got != tc.want {
			t.Errorf("DFA.Accepts(%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestDeterminizeBoundedError(t *testing.T) {
	// An NFA whose subset construction needs more than 2 states.
	a := NewNFA(2)
	p := a.AddState()
	q := a.AddState()
	a.AddEdge(0, 0, p)
	a.AddEdge(0, 0, q)
	a.AddEdge(p, 0, p)
	a.AddEdge(q, 1, q)
	if _, err := a.DeterminizeBounded(1); err == nil {
		t.Error("want error from bounded determinization")
	}
	if _, err := a.DeterminizeBounded(16); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDFABasics(t *testing.T) {
	d := NewDFA(2)
	s1 := d.AddState()
	d.SetEdge(0, 0, s1)
	d.SetEdge(s1, 1, 0)
	if !d.Accepts([]int{0, 1, 0, 1}) {
		t.Error("alternating word should be accepted")
	}
	if d.Accepts([]int{1}) {
		t.Error("letter 1 undefined from initial state")
	}
	if d.Succ(0, 1) != -1 || d.Succ(0, 0) != s1 {
		t.Error("Succ wrong")
	}
}

func TestDFATrim(t *testing.T) {
	d := NewDFA(1)
	s1 := d.AddState()
	d.AddState() // unreachable
	d.SetEdge(0, 0, s1)
	trimmed := d.Trim()
	if trimmed.NumStates() != 2 {
		t.Errorf("Trim left %d states, want 2", trimmed.NumStates())
	}
	if !trimmed.Accepts([]int{0}) || trimmed.Accepts([]int{0, 0}) {
		t.Error("Trim changed the language")
	}
}

func TestMinimize(t *testing.T) {
	// Two redundant paths recognizing prefixes of 0·0: states 1 and 2 are
	// language-equivalent.
	d := NewDFA(2)
	s1 := d.AddState()
	s2 := d.AddState()
	s3 := d.AddState()
	d.SetEdge(0, 0, s1)
	d.SetEdge(0, 1, s2)
	d.SetEdge(s1, 0, s3)
	d.SetEdge(s2, 0, s3)
	m := d.Minimize()
	if m.NumStates() != 3 {
		t.Errorf("Minimize left %d states, want 3", m.NumStates())
	}
	for _, tc := range []struct {
		w    []int
		want bool
	}{
		{nil, true},
		{[]int{0}, true},
		{[]int{1}, true},
		{[]int{0, 0}, true},
		{[]int{1, 0}, true},
		{[]int{0, 1}, false},
		{[]int{0, 0, 0}, false},
	} {
		if got := m.Accepts(tc.w); got != tc.want {
			t.Errorf("minimized Accepts(%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	d := randomDFA(rand.New(rand.NewSource(2)), 40, 3)
	m := d.Minimize()
	m2 := m.Minimize()
	if m.NumStates() != m2.NumStates() {
		t.Errorf("Minimize not idempotent: %d then %d states", m.NumStates(), m2.NumStates())
	}
}

func TestInclusionNFAinDFAHolds(t *testing.T) {
	a := chain(3, []int{0, 1})
	d := chain(3, []int{0, 1, 2}).Determinize()
	ok, cex := IncludedInDFA(a, d)
	if !ok {
		t.Errorf("inclusion should hold, got counterexample %v", cex)
	}
}

func TestInclusionNFAinDFAFails(t *testing.T) {
	a := chain(2, []int{0, 1, 0})
	d := chain(2, []int{0, 1}).Determinize()
	ok, cex := IncludedInDFA(a, d)
	if ok {
		t.Fatal("inclusion should fail")
	}
	if len(cex) != 3 || cex[0] != 0 || cex[1] != 1 || cex[2] != 0 {
		t.Errorf("counterexample = %v, want [0 1 0]", cex)
	}
	if !a.Accepts(cex) || d.Accepts(cex) {
		t.Error("counterexample not in L(a) \\ L(d)")
	}
}

func TestInclusionWithEpsilonOnLeft(t *testing.T) {
	// Left automaton reaches its letter through ε.
	a := NewNFA(2)
	s1 := a.AddState()
	s2 := a.AddState()
	a.AddEps(0, s1)
	a.AddEdge(s1, 1, s2)
	d := NewDFA(2)
	ok, cex := IncludedInDFA(a, d)
	if ok {
		t.Fatal("inclusion should fail: d accepts only ε")
	}
	if len(cex) != 1 || cex[0] != 1 {
		t.Errorf("counterexample = %v, want [1]", cex)
	}
}

func TestAntichainInclusionHolds(t *testing.T) {
	a := chain(3, []int{0, 1})
	b := chain(3, []int{0, 1, 2})
	ok, cex := IncludedInNFA(a, b)
	if !ok {
		t.Errorf("inclusion should hold, got %v", cex)
	}
}

func TestAntichainInclusionFails(t *testing.T) {
	a := chain(2, []int{0, 0, 1})
	b := chain(2, []int{0, 0})
	ok, cex := IncludedInNFA(a, b)
	if ok {
		t.Fatal("inclusion should fail")
	}
	if !a.Accepts(cex) || b.Accepts(cex) {
		t.Errorf("bad counterexample %v", cex)
	}
}

func TestAntichainWithNondeterministicRight(t *testing.T) {
	// Right automaton: two branches on 0; only together do they cover
	// {01, 02}.
	b := NewNFA(3)
	p := b.AddState()
	q := b.AddState()
	b.AddEdge(0, 0, p)
	b.AddEdge(0, 0, q)
	b.AddEdge(p, 1, p)
	b.AddEdge(q, 2, q)

	covered := NewNFA(3)
	s1 := covered.AddState()
	s2 := covered.AddState()
	covered.AddEdge(0, 0, s1)
	covered.AddEdge(s1, 1, s2)
	if ok, cex := IncludedInNFA(covered, b); !ok {
		t.Errorf("inclusion should hold, got %v", cex)
	}

	escaping := chain(3, []int{0, 1, 2})
	ok, cex := IncludedInNFA(escaping, b)
	if ok {
		t.Fatal("inclusion should fail")
	}
	if !escaping.Accepts(cex) || b.Accepts(cex) {
		t.Errorf("bad counterexample %v", cex)
	}
}

func TestEquivalentNFADFA(t *testing.T) {
	a := NewNFA(3)
	p := a.AddState()
	q := a.AddState()
	a.AddEdge(0, 0, p)
	a.AddEdge(0, 0, q)
	a.AddEdge(p, 1, p)
	a.AddEdge(q, 2, q)
	d := a.Determinize()
	equal, _, cex := EquivalentNFADFA(a, d)
	if !equal {
		t.Errorf("determinization must preserve the language, cex %v", cex)
	}

	// Remove behaviour from the DFA: now a ⊄ d.
	d2 := chain(3, []int{0, 1}).Determinize()
	equal, fwd, cex := EquivalentNFADFA(a, d2)
	if equal || !fwd {
		t.Errorf("equal=%v fwd=%v", equal, fwd)
	}
	if !a.Accepts(cex) || d2.Accepts(cex) {
		t.Errorf("bad counterexample %v", cex)
	}

	// Extend the DFA beyond a: now d ⊄ a.
	d3 := chain(3, []int{0, 1, 1, 1}).Determinize()
	equal, fwd, cex = EquivalentNFADFA(chain(3, []int{0, 1}), d3)
	if equal || fwd {
		t.Errorf("equal=%v fwd=%v", equal, fwd)
	}
	if !d3.Accepts(cex) {
		t.Errorf("bad counterexample %v", cex)
	}
}

// Randomized cross-validation: for random NFAs and DFAs, the product and
// antichain inclusion procedures must agree with explicit word checking on
// bounded-length words.

func randomNFA(rng *rand.Rand, states, alphabet int) *NFA {
	a := NewNFA(alphabet)
	for i := 1; i < states; i++ {
		a.AddState()
	}
	for s := 0; s < states; s++ {
		for l := 0; l < alphabet; l++ {
			for e := 0; e < 2; e++ {
				if rng.Float64() < 0.25 {
					a.AddEdge(s, l, rng.Intn(states))
				}
			}
		}
		if rng.Float64() < 0.15 {
			a.AddEps(s, rng.Intn(states))
		}
	}
	return a
}

func randomDFA(rng *rand.Rand, states, alphabet int) *DFA {
	d := NewDFA(alphabet)
	for i := 1; i < states; i++ {
		d.AddState()
	}
	for s := 0; s < states; s++ {
		for l := 0; l < alphabet; l++ {
			if rng.Float64() < 0.5 {
				d.SetEdge(s, l, rng.Intn(states))
			}
		}
	}
	return d
}

// enumerate all words up to length max and compare membership.
func agreeOnShortWords(t *testing.T, accA, accB func([]int) bool, alphabet, max int, mustInclude bool, tag string) {
	var rec func(prefix []int)
	rec = func(prefix []int) {
		if mustInclude && accA(prefix) && !accB(prefix) {
			t.Fatalf("%s: word %v in left but not right", tag, prefix)
		}
		if len(prefix) == max {
			return
		}
		for l := 0; l < alphabet; l++ {
			rec(append(prefix, l))
		}
	}
	rec(nil)
}

func TestInclusionRandomizedAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		a := randomNFA(rng, 5, 2)
		d := randomDFA(rng, 5, 2)
		ok, cex := IncludedInDFA(a, d)
		if ok {
			agreeOnShortWords(t, a.Accepts, d.Accepts, 2, 8, true, "nfa⊆dfa")
		} else {
			if !a.Accepts(cex) || d.Accepts(cex) {
				t.Fatalf("invalid counterexample %v (iteration %d)", cex, i)
			}
		}
	}
}

func TestAntichainRandomizedAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 30; i++ {
		a := randomNFA(rng, 5, 2)
		b := randomNFA(rng, 5, 2)
		ok, cex := IncludedInNFA(a, b)
		if ok {
			agreeOnShortWords(t, a.Accepts, b.Accepts, 2, 8, true, "nfa⊆nfa")
		} else {
			if !a.Accepts(cex) || b.Accepts(cex) {
				t.Fatalf("invalid counterexample %v (iteration %d)", cex, i)
			}
		}
	}
}

func TestAntichainAgreesWithDeterminizedCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 40; i++ {
		a := randomNFA(rng, 5, 2)
		b := randomNFA(rng, 5, 2)
		okAnti, _ := IncludedInNFA(a, b)
		okProd, _ := IncludedInDFA(a, b.Determinize())
		if okAnti != okProd {
			t.Fatalf("antichain=%v product=%v at iteration %d", okAnti, okProd, i)
		}
	}
}

func TestMinimizePreservesLanguageRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for i := 0; i < 25; i++ {
		d := randomDFA(rng, 8, 2)
		m := d.Minimize()
		equal, _, cex := EquivalentNFADFA(d.ToNFA(), m)
		if !equal {
			t.Fatalf("minimization changed language, cex %v (iteration %d)", cex, i)
		}
		if m.NumStates() > d.NumStates() {
			t.Fatalf("minimization grew the automaton: %d -> %d", d.NumStates(), m.NumStates())
		}
	}
}
