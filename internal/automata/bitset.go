package automata

import "math/bits"

// BitSet is a fixed-capacity set of small non-negative integers, used to
// represent sets of automaton states.
type BitSet struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitSet returns an empty set with capacity for values 0..n-1.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the capacity the set was created with.
func (b *BitSet) Cap() int { return b.n }

// Add inserts i.
func (b *BitSet) Add(i int) { b.words[i/64] |= 1 << (i % 64) }

// Has reports membership of i.
func (b *BitSet) Has(i int) bool { return b.words[i/64]&(1<<(i%64)) != 0 }

// Empty reports whether the set has no members.
func (b *BitSet) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of members.
func (b *BitSet) Len() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy.
func (b *BitSet) Clone() *BitSet {
	c := &BitSet{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// SubsetOf reports whether every member of b is in o.
func (b *BitSet) SubsetOf(o *BitSet) bool {
	for i, w := range b.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and o have the same members.
func (b *BitSet) Equal(o *BitSet) bool {
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Members lists the set in ascending order.
func (b *BitSet) Members() []int {
	out := make([]int, 0, b.Len())
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, wi*64+bit)
			w &= w - 1
		}
	}
	return out
}

// Hash returns an FNV-1a style hash of the set's contents, for bucketing.
func (b *BitSet) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, w := range b.words {
		h ^= w
		h *= 1099511628211
	}
	return h
}
