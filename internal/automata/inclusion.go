package automata

import (
	"sync"

	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
)

// Language inclusion for prefix-closed (all-states-accepting) automata.
//
// IncludedInDFA is the linear product check the paper uses to verify a TM
// against a deterministic specification: since the specification is
// deterministic, a word of the implementation escapes the specification
// exactly when the synchronized product runs off a defined transition.
//
// IncludedInNFA is the antichain algorithm (paper ref. [28]): searching for
// a word accepted by the left automaton that kills every run of the right
// one, pruning subset-subsumed search nodes.

// InclusionStats exposes the work an inclusion check performed, for
// the observability layer and for callers tracking the perf
// trajectory across instances.
type InclusionStats struct {
	// PairsVisited counts distinct product pairs reached by the
	// deterministic check (IncludedInDFA).
	PairsVisited int
	// NodesCreated and NodesPruned count antichain search nodes
	// created respectively killed by subsumption (IncludedInNFA).
	NodesCreated int
	NodesPruned  int
	// CexLen is the number of letters of the returned counterexample —
	// the BFS depth at which the inclusion broke — or 0 when inclusion
	// holds.
	CexLen int
}

// IncludedInDFA reports whether L(a) ⊆ L(d). When inclusion fails it
// returns a shortest-by-BFS counterexample word in L(a) \ L(d).
func IncludedInDFA(a *NFA, d *DFA) (bool, []int) {
	ok, cex, _ := IncludedInDFAStats(a, d)
	return ok, cex
}

// denseVisitedLimit bounds the product size (NFA states × DFA states)
// for which the deterministic inclusion check uses a dense visited
// table; 2²⁵ int32 entries ≈ 128 MiB. Larger products fall back to the
// hash map, trading speed for footprint.
const denseVisitedLimit = 1 << 25

// denseVisitedPool recycles the dense visited tables across checks.
// Every pooled slice upholds the all-(-1) invariant: users reset
// exactly the entries they touched (those in their BFS queue) before
// returning it.
var denseVisitedPool sync.Pool

func getDenseVisited(n int) []int32 {
	if v, ok := denseVisitedPool.Get().(*[]int32); ok && len(*v) >= n {
		return (*v)[:n]
	}
	fresh := make([]int32, n)
	for i := range fresh {
		fresh[i] = -1
	}
	return fresh
}

func putDenseVisited(v []int32, touched []int64) {
	for _, pair := range touched {
		v[pair] = -1
	}
	full := v[:cap(v)]
	denseVisitedPool.Put(&full)
}

// IncludedInDFAStats is IncludedInDFA returning the work counters; the
// aggregate totals are also recorded under "automata.dfa_inclusion.*"
// in the obs registry.
//
// The visited set over product pairs (n, d) is a dense int32 table
// indexed by n·width+d (both factors are known up front), recycled
// across checks through a pool; oversized products fall back to a map.
func IncludedInDFAStats(a *NFA, d *DFA) (ok bool, cex []int, st InclusionStats) {
	ok, cex, st, _ = IncludedInDFABudget(a, d, 0) // unbounded: cannot fail
	return ok, cex, st
}

// IncludedInDFABudget is IncludedInDFAStats with a budget on visited
// product pairs: when maxPairs > 0 and the search would visit more, it
// stops with a *space.BudgetError (the stats still report the truncated
// work). maxPairs <= 0 means unbounded, and then the error is always
// nil.
func IncludedInDFABudget(a *NFA, d *DFA, maxPairs int) (bool, []int, InclusionStats, error) {
	return IncludedInDFAGuarded(a, d, guard.New(nil, maxPairs, 0))
}

// IncludedInDFAGuarded is the fully guarded inclusion check: the
// guard's context, pair budget, and heap watchdog are consulted once
// per dequeued product pair, so a -timeout or Ctrl-C interrupts even a
// long inclusion phase. The stats still report the truncated work.
func IncludedInDFAGuarded(a *NFA, d *DFA, g *guard.Guard) (ok bool, cex []int, st InclusionStats, err error) {
	type node struct {
		parent int
		letter int // -1 for the root and for ε-steps
	}
	width := int64(d.NumStates() + 1)
	encode := func(n, dd int) int64 { return int64(n)*width + int64(dd) }
	total := int64(a.NumStates()) * width
	nodes := []node{{parent: -1, letter: -1}}
	var queue []int64

	// lookup/set abstract the two visited-table representations; every
	// visited pair enters the queue exactly once, so len(queue) is the
	// pairs-visited count for both.
	var lookup func(pair int64) (int32, bool)
	var set func(pair int64, idx int32)
	var dense []int32
	if total <= denseVisitedLimit {
		dense = getDenseVisited(int(total))
		lookup = func(pair int64) (int32, bool) {
			idx := dense[pair]
			return idx, idx >= 0
		}
		set = func(pair int64, idx int32) { dense[pair] = idx }
	} else {
		m := make(map[int64]int32)
		lookup = func(pair int64) (int32, bool) {
			idx, ok := m[pair]
			return idx, ok
		}
		set = func(pair int64, idx int32) { m[pair] = idx }
	}

	push := func(pair int64, parent int, letter int) {
		if _, ok := lookup(pair); ok {
			return
		}
		nodes = append(nodes, node{parent: parent, letter: letter})
		set(pair, int32(len(nodes)-1))
		queue = append(queue, pair)
	}

	buildWord := func(idx, lastLetter int) []int {
		var rev []int
		if lastLetter >= 0 {
			rev = append(rev, lastLetter)
		}
		for idx > 0 {
			if nodes[idx].letter >= 0 {
				rev = append(rev, nodes[idx].letter)
			}
			idx = nodes[idx].parent
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}

	record := func(ok bool, cex []int, err error) (bool, []int, InclusionStats, error) {
		st = InclusionStats{PairsVisited: len(queue), CexLen: len(cex)}
		obs.Inc("automata.dfa_inclusion.checks", 1)
		obs.Inc("automata.dfa_inclusion.pairs", int64(st.PairsVisited))
		if dense != nil {
			putDenseVisited(dense, queue)
		}
		return ok, cex, st, err
	}

	start := encode(a.Initial(), d.Initial())
	set(start, 0)
	queue = append(queue, start)
	guarded := g.Active()
	for qi := 0; qi < len(queue); qi++ {
		if guarded {
			if gerr := g.Check(len(queue)); gerr != nil {
				return record(false, nil, gerr)
			}
		}
		pair := queue[qi]
		n := int(pair / width)
		dd := int(pair % width)
		idx32, _ := lookup(pair)
		idx := int(idx32)
		for _, n2 := range a.EpsSucc(n) {
			push(encode(int(n2), dd), idx, -1)
		}
		for l := 0; l < a.Alphabet(); l++ {
			succs := a.Succ(n, l)
			if len(succs) == 0 {
				continue
			}
			d2 := d.Succ(dd, l)
			if d2 < 0 {
				return record(false, buildWord(idx, l), nil)
			}
			for _, n2 := range succs {
				push(encode(int(n2), d2), idx, l)
			}
		}
	}
	return record(true, nil, nil)
}

// IncludedInNFA reports whether L(a) ⊆ L(b) using the antichain method.
// When inclusion fails it returns a counterexample word in L(a) \ L(b).
func IncludedInNFA(a *NFA, b *NFA) (bool, []int) {
	ok, cex, _ := IncludedInNFAStats(a, b)
	return ok, cex
}

// IncludedInNFAStats is IncludedInNFA returning the work counters; the
// aggregate totals are also recorded under "automata.antichain.*" in
// the obs registry.
func IncludedInNFAStats(a *NFA, b *NFA) (ok bool, cex []int, st InclusionStats) {
	type node struct {
		aState int
		set    *BitSet
		parent int
		letter int // -1 for the root and for ε-steps
		dead   bool
	}
	var nodes []node
	pruned := 0
	// antichain[aState] indexes nodes holding the minimal b-sets seen for
	// that a-state.
	antichain := map[int][]int{}

	buildWord := func(idx, lastLetter int) []int {
		var rev []int
		if lastLetter >= 0 {
			rev = append(rev, lastLetter)
		}
		for idx >= 0 {
			if nodes[idx].letter >= 0 {
				rev = append(rev, nodes[idx].letter)
			}
			idx = nodes[idx].parent
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}

	// insert adds (aState, set) unless subsumed; returns the node id or -1.
	insert := func(aState int, set *BitSet, parent, letter int) int {
		ids := antichain[aState]
		for _, id := range ids {
			if !nodes[id].dead && nodes[id].set.SubsetOf(set) {
				return -1 // an easier-or-equal node already covers this one
			}
		}
		for _, id := range ids {
			if !nodes[id].dead && set.SubsetOf(nodes[id].set) {
				nodes[id].dead = true
				pruned++
			}
		}
		nodes = append(nodes, node{aState: aState, set: set, parent: parent, letter: letter})
		id := len(nodes) - 1
		antichain[aState] = append(ids, id)
		return id
	}

	record := func(ok bool, cex []int) (bool, []int, InclusionStats) {
		st = InclusionStats{NodesCreated: len(nodes), NodesPruned: pruned, CexLen: len(cex)}
		obs.Inc("automata.antichain.checks", 1)
		obs.Inc("automata.antichain.nodes", int64(st.NodesCreated))
		obs.Inc("automata.antichain.pruned", int64(st.NodesPruned))
		return ok, cex, st
	}

	init := insert(a.Initial(), b.InitialSet(), -1, -1)
	queue := []int{init}
	for qi := 0; qi < len(queue); qi++ {
		id := queue[qi]
		if nodes[id].dead {
			continue
		}
		n, set := nodes[id].aState, nodes[id].set
		for _, n2 := range a.EpsSucc(n) {
			if nid := insert(int(n2), set, id, -1); nid >= 0 {
				queue = append(queue, nid)
			}
		}
		for l := 0; l < a.Alphabet(); l++ {
			succs := a.Succ(n, l)
			if len(succs) == 0 {
				continue
			}
			next := b.Step(set, l)
			if next.Empty() {
				return record(false, buildWord(id, l))
			}
			for _, n2 := range succs {
				if nid := insert(int(n2), next, id, l); nid >= 0 {
					queue = append(queue, nid)
				}
			}
		}
	}
	return record(true, nil)
}

// EquivalentNFADFA checks L(a) = L(d): the forward direction with the
// product check and the backward direction with the antichain method. On
// failure, the returned word witnesses the symmetric difference and fwd
// tells which side failed (fwd true: word ∈ L(a) \ L(d)).
func EquivalentNFADFA(a *NFA, d *DFA) (equal bool, fwd bool, cex []int) {
	if ok, w := IncludedInDFA(a, d); !ok {
		return false, true, w
	}
	if ok, w := IncludedInNFA(d.ToNFA(), a); !ok {
		return false, false, w
	}
	return true, false, nil
}
