package automata

import "fmt"

// DFA is a deterministic finite automaton over {0, …, Alphabet()-1} with a
// partial transition function. Every state is accepting; a word is rejected
// exactly when it runs off the defined transitions.
type DFA struct {
	alphabet int
	initial  int
	trans    [][]int32 // trans[s][l] = successor, or -1
}

// NewDFA returns a DFA over an alphabet of the given size with a single
// initial state 0 already allocated.
func NewDFA(alphabet int) *DFA {
	d := &DFA{alphabet: alphabet, initial: 0}
	d.AddState()
	return d
}

// Alphabet returns the alphabet size.
func (d *DFA) Alphabet() int { return d.alphabet }

// NumStates returns the number of allocated states.
func (d *DFA) NumStates() int { return len(d.trans) }

// Initial returns the initial state.
func (d *DFA) Initial() int { return d.initial }

// SetInitial designates s as the initial state.
func (d *DFA) SetInitial(s int) { d.initial = s }

// AddState allocates a fresh state with no outgoing transitions.
func (d *DFA) AddState() int {
	row := make([]int32, d.alphabet)
	for i := range row {
		row[i] = -1
	}
	d.trans = append(d.trans, row)
	return len(d.trans) - 1
}

// SetEdge defines the transition from --letter--> to, replacing any
// previous definition.
func (d *DFA) SetEdge(from, letter, to int) {
	if letter < 0 || letter >= d.alphabet {
		panic(fmt.Sprintf("automata: letter %d out of range [0,%d)", letter, d.alphabet))
	}
	d.trans[from][letter] = int32(to)
}

// Succ returns the successor of s on letter l, or -1 when undefined.
func (d *DFA) Succ(s, l int) int { return int(d.trans[s][l]) }

// Accepts reports whether the word stays on defined transitions.
func (d *DFA) Accepts(word []int) bool {
	s := d.initial
	for _, l := range word {
		s = int(d.trans[s][l])
		if s < 0 {
			return false
		}
	}
	return true
}

// ToNFA views the DFA as an NFA (no ε-transitions).
func (d *DFA) ToNFA() *NFA {
	a := NewNFA(d.alphabet)
	for i := 1; i < d.NumStates(); i++ {
		a.AddState()
	}
	a.SetInitial(d.initial)
	for s := range d.trans {
		for l, t := range d.trans[s] {
			if t >= 0 {
				a.AddEdge(s, l, int(t))
			}
		}
	}
	return a
}

// Trim returns an equivalent DFA containing only states reachable from the
// initial state, renumbered in BFS order (the initial state becomes 0).
func (d *DFA) Trim() *DFA {
	id := make([]int32, d.NumStates())
	for i := range id {
		id[i] = -1
	}
	order := []int{d.initial}
	id[d.initial] = 0
	for i := 0; i < len(order); i++ {
		s := order[i]
		for l := 0; l < d.alphabet; l++ {
			t := d.trans[s][l]
			if t >= 0 && id[t] < 0 {
				id[t] = int32(len(order))
				order = append(order, int(t))
			}
		}
	}
	out := NewDFA(d.alphabet)
	for i := 1; i < len(order); i++ {
		out.AddState()
	}
	for ni, s := range order {
		for l := 0; l < d.alphabet; l++ {
			if t := d.trans[s][l]; t >= 0 {
				out.SetEdge(ni, l, int(id[t]))
			}
		}
	}
	return out
}

// Minimize returns the minimal DFA for the same prefix-closed language,
// computed by Moore partition refinement over the reachable part (with an
// implicit rejecting sink for undefined transitions).
func (d *DFA) Minimize() *DFA {
	t := d.Trim()
	n := t.NumStates()
	// block[s] is the current partition block of state s. Block -1 is the
	// implicit dead state. All states accept, so they start in one block.
	block := make([]int32, n)
	numBlocks := 1
	for {
		// Signature of a state: its block plus the blocks of its successors
		// (-1 encodes the dead state).
		type sigKey string
		sig := make([]byte, 0, 4*(t.alphabet+1))
		next := make([]int32, n)
		index := map[sigKey]int32{}
		fresh := 0
		for s := 0; s < n; s++ {
			sig = sig[:0]
			sig = appendInt32(sig, block[s])
			for l := 0; l < t.alphabet; l++ {
				succ := t.trans[s][l]
				if succ >= 0 {
					sig = appendInt32(sig, block[succ])
				} else {
					sig = appendInt32(sig, -1)
				}
			}
			k := sigKey(sig)
			id, ok := index[k]
			if !ok {
				id = int32(fresh)
				fresh++
				index[k] = id
			}
			next[s] = id
		}
		block = next
		if fresh == numBlocks {
			break
		}
		numBlocks = fresh
	}
	// Build the quotient automaton.
	out := NewDFA(t.alphabet)
	for i := 1; i < numBlocks; i++ {
		out.AddState()
	}
	// Renumber so the initial block is 0.
	ren := make([]int32, numBlocks)
	for i := range ren {
		ren[i] = -1
	}
	nextID := int32(0)
	assign := func(b int32) int32 {
		if ren[b] < 0 {
			ren[b] = nextID
			nextID++
		}
		return ren[b]
	}
	assign(block[t.initial])
	for s := 0; s < n; s++ {
		assign(block[s])
	}
	for s := 0; s < n; s++ {
		from := ren[block[s]]
		for l := 0; l < t.alphabet; l++ {
			if succ := t.trans[s][l]; succ >= 0 {
				out.SetEdge(int(from), l, int(ren[block[succ]]))
			}
		}
	}
	out.SetInitial(int(ren[block[t.initial]]))
	return out
}

func appendInt32(b []byte, v int32) []byte {
	u := uint32(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}
